// Event-driven churn engine (§6.5): deterministic replay of scripted
// scenarios, query/repair interleavings the synchronous path cannot
// exhibit, soft-state TTL/republish timer behaviour, and an end-to-end
// soak of the ChurnDriver's event engine.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/sim/churn_driver.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

ChurnScenario small_scenario(std::uint64_t seed, bool synchronous) {
  ChurnScenario sc;
  sc.horizon = 16.0;
  sc.epoch = 4.0;
  sc.join_rate = 0.5;
  sc.leave_rate = 0.4;
  sc.fail_rate = 0.3;
  sc.min_nodes = 24;
  sc.query_rate = 12.0;
  sc.objects = 24;
  sc.replicas = 1;
  sc.republish_interval = 4.0;
  sc.expiry_interval = 2.0;
  sc.heartbeat_interval = 4.0;
  sc.seed = seed;
  sc.synchronous = synchronous;
  return sc;
}

// --------------------------------------------------------- deterministic replay

TEST(ChurnEngine, SameSeedReplaysIdenticalTraceAndStats) {
  auto run_once = [](std::vector<std::string>* log) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, 7, p);
    ChurnDriver driver(*g.net, small_scenario(7, false));
    const ChurnReport rep = driver.run();
    *log = driver.event_log();
    return rep;
  };
  std::vector<std::string> log_a, log_b;
  const ChurnReport a = run_once(&log_a);
  const ChurnReport b = run_once(&log_b);

  EXPECT_EQ(log_a, log_b) << "same seed must replay the same event trace";
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.fails, b.fails);
  EXPECT_EQ(a.maintenance_msgs, b.maintenance_msgs);
  EXPECT_EQ(a.events_fired, b.events_fired);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].queries, b.epochs[i].queries) << "epoch " << i;
    EXPECT_EQ(a.epochs[i].found, b.epochs[i].found) << "epoch " << i;
  }
  // The scenario must actually exercise the machinery.
  EXPECT_GT(a.queries, 50u);
  EXPECT_GT(a.events_fired, 500u);
  EXPECT_GT(log_a.size(), 100u);
}

TEST(ChurnEngine, DifferentSeedsDiverge) {
  auto trace_of = [](std::uint64_t seed) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, seed, p);
    ChurnDriver driver(*g.net, small_scenario(seed, false));
    driver.run();
    return driver.event_log();
  };
  EXPECT_NE(trace_of(7), trace_of(8));
}

// The full zipf + flash crowd + locate cache + hotspot replication stack
// must replay byte-identically: the popularity table is deterministic, the
// cache and the hotspot manager are RNG-free, so only the scenario's own
// Rng stream drives decisions (ISSUE 6).
TEST(ChurnEngine, ZipfFlashHotspotScenarioReplaysIdentically) {
  auto run_once = [](std::vector<std::string>* log) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    p.locate_cache_size = 64;
    auto g = test::grow_ring_network(48, 21, p);
    ChurnScenario sc = small_scenario(21, false);
    sc.popularity = ChurnScenario::Popularity::kZipf;
    sc.zipf_s = 1.0;
    sc.flash_at = 8.0;
    sc.flash_factor = 1000.0;
    sc.flash_index = 0;
    sc.hotspot_replication = true;
    sc.hotspot.half_life = 2.0;
    sc.hotspot.promote_threshold = 8.0;
    ChurnDriver driver(*g.net, sc);
    const ChurnReport rep = driver.run();
    *log = driver.event_log();
    return rep;
  };
  std::vector<std::string> log_a, log_b;
  const ChurnReport a = run_once(&log_a);
  const ChurnReport b = run_once(&log_b);

  EXPECT_EQ(log_a, log_b) << "zipf + cache + hotspot must replay verbatim";
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_fallbacks, b.cache_fallbacks);
  EXPECT_EQ(a.hotspot_promotions, b.hotspot_promotions);
  EXPECT_EQ(a.hotspot_demotions, b.hotspot_demotions);
  EXPECT_EQ(a.load_max, b.load_max);
  ASSERT_EQ(a.hops.samples().size(), b.hops.samples().size());
  // The skewed workload must actually differ from the uniform one and
  // exercise the new machinery.
  EXPECT_GT(a.queries, 50u);
  EXPECT_GT(a.cache_hits, 0u);
}

// Switching the popularity model changes the drawn targets (the flash
// boost alone reweights the stream), while the uniform default replays the
// pre-zipf workload byte for byte — guarded by the baseline replay test
// above staying green.
TEST(ChurnEngine, ZipfWorkloadDivergesFromUniform) {
  auto log_of = [](bool zipf) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, 23, p);
    ChurnScenario sc = small_scenario(23, false);
    if (zipf) {
      sc.popularity = ChurnScenario::Popularity::kZipf;
      sc.zipf_s = 1.0;
    }
    ChurnDriver driver(*g.net, sc);
    driver.run();
    return driver.event_log();
  };
  EXPECT_NE(log_of(true), log_of(false));
}

// ------------------------------------------------------------- interleaving

// A locate issued at an instant when *no* live pointer exists anywhere
// succeeds because a republish lands between its hops.  The synchronous
// path executes atomically against one directory snapshot, so from the
// same state the same query can only miss — this outcome is unique to the
// event-driven execution.
TEST(ChurnEngine, LocateObservesRepublishLandingMidFlight) {
  auto make = [] {
    TapestryParams p = small_params();
    p.pointer_ttl = 5.0;
    return test::grow_ring_network(48, 11, p);
  };
  auto sync_twin = make();   // control: stays synchronous
  auto event_twin = make();  // identical construction, same seed

  const Guid guid = make_guid(*sync_twin.net, 4242);
  const NodeId server = sync_twin.ids[5];
  sync_twin.net->publish(server, guid);
  event_twin.net->publish(server, guid);

  // Let every pointer on the publish path pass its TTL.
  sync_twin.net->events().run_until(6.0);
  event_twin.net->events().run_until(6.0);

  // A client other than the root, so the query needs at least one hop.
  const NodeId root = event_twin.net->surrogate_root(guid);
  NodeId client{};
  for (const NodeId& id : event_twin.ids) {
    if (!(id == root) && !(id == server)) {
      client = id;
      break;
    }
  }

  // Control: the atomic locate at t=6 misses — nothing is live.
  EXPECT_FALSE(sync_twin.net->locate(client, guid).found);

  // Event-driven: issue the same query at the same instant, then land a
  // republish while the query is in flight.
  std::optional<LocateResult> result;
  const double t_start = event_twin.net->now();
  event_twin.net->locate_async(client, guid,
                               [&](const LocateResult& r) { result = r; });
  const double t_republish = t_start + 1e-6;
  event_twin.net->events().schedule_at(
      t_republish, [&] { event_twin.net->republish_server(server); });
  event_twin.net->events().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found)
      << "the in-flight query must observe the mid-flight republish";
  EXPECT_GT(result->hops, 0u);
  // The query completed after the republish landed: it genuinely
  // interleaved rather than running before or after it.
  EXPECT_GT(event_twin.net->now(), t_republish);
  // The control network (no republish) still misses at any later time.
  EXPECT_FALSE(sync_twin.net->locate(client, guid).found);
}

// The dual: a query stranded on a node that crashes mid-flight loses that
// attempt.  The synchronous path checks liveness atomically and can never
// park a query on a node that dies under it.
TEST(ChurnEngine, LocateLosesAttemptWhenCarrierDiesMidFlight) {
  TapestryParams p = small_params();
  auto g = test::grow_ring_network(48, 19, p);
  const Guid guid = make_guid(*g.net, 77);
  const NodeId server = g.ids[3];
  g.net->publish(server, guid);

  // Find the query's first hop from a client and kill it mid-flight.
  const NodeId client = [&] {
    for (const NodeId& id : g.ids)
      if (!(id == server)) return id;
    return g.ids[0];
  }();
  RouteState state;
  const auto first_hop = g.net->route_step_peek(client, guid, state);
  ASSERT_TRUE(first_hop.has_value()) << "client must not be the root";

  std::optional<LocateResult> result;
  g.net->locate_async(client, guid,
                      [&](const LocateResult& r) { result = r; });
  // The first step fires at t=now (client-side check), the second after
  // the hop delay; crash the first hop in between.
  g.net->events().schedule_in(1e-9, [&] {
    if (g.net->contains(*first_hop)) g.net->fail(*first_hop);
  });
  g.net->events().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->found)
      << "query parked on a crashing node must lose the attempt";
}

// The final pointer -> replica leg is itself event-decomposed: a replica
// that crashes after a query has read its pointer — while the query is
// already travelling toward it — costs the query that attempt.  Before the
// decomposition the leg completed atomically with the pointer read, so
// this interleaving was unobservable.
TEST(ChurnEngine, ReplicaCrashDuringFinalLegLosesQuery) {
  auto make = [] { return test::grow_ring_network(48, 29, small_params()); };

  // Control twin: measure when the untouched query completes and verify
  // it finds the replica.
  auto control = make();
  const Guid guid = [&] {
    // A guid whose publish path gives the final leg at least one hop from
    // some pointer holder that is not the server itself.
    for (std::uint64_t raw = 600;; ++raw) {
      const Guid g = make_guid(*control.net, raw);
      const auto path =
          control.net->router().route_to_root_peek(control.ids[3], g).path;
      if (path.size() >= 3) return g;
    }
  }();
  const NodeId server = control.ids[3];
  control.net->publish(server, guid);
  // Query from a mid-path pointer holder: discovery is local (t = 0), so
  // the whole in-flight window belongs to the final leg.
  const NodeId client =
      control.net->router().route_to_root_peek(server, guid).path[1];
  ASSERT_FALSE(client == server);

  std::optional<LocateResult> control_result;
  double done_time = 0.0;
  control.net->locate_async(client, guid, [&](const LocateResult& r) {
    control_result = r;
    done_time = control.net->now();
  });
  control.net->events().run();
  ASSERT_TRUE(control_result.has_value());
  ASSERT_TRUE(control_result->found);
  EXPECT_EQ(control_result->server, server);
  ASSERT_GT(done_time, 0.0) << "the leg must take simulated time";

  // Crash twin: identical construction and query, but the replica dies
  // halfway through the leg.
  auto crash = make();
  crash.net->publish(server, guid);
  std::optional<LocateResult> crash_result;
  crash.net->locate_async(client, guid,
                          [&](const LocateResult& r) { crash_result = r; });
  crash.net->events().schedule_at(done_time / 2,
                                  [&] { crash.net->fail(server); });
  crash.net->events().run();
  ASSERT_TRUE(crash_result.has_value());
  EXPECT_FALSE(crash_result->found)
      << "replica crashed while the query was in flight toward it";

  // Sanity: the same crash scheduled after completion does not disturb
  // the (identical, hence identically timed) query.
  auto late = make();
  late.net->publish(server, guid);
  std::optional<LocateResult> late_result;
  late.net->locate_async(client, guid,
                         [&](const LocateResult& r) { late_result = r; });
  late.net->events().schedule_at(done_time * 2,
                                 [&] { late.net->fail(server); });
  late.net->events().run();
  ASSERT_TRUE(late_result.has_value());
  EXPECT_TRUE(late_result->found);
}

// ------------------------------------------------------- soft-state timers

TEST(ChurnEngine, RepublishTimerRefreshesSoftState) {
  TapestryParams p = small_params();
  p.pointer_ttl = 4.0;
  auto g = test::grow_ring_network(32, 13, p);
  const Guid guid = make_guid(*g.net, 99);
  g.net->publish(g.ids[3], guid);

  g.net->start_soft_state(/*republish_every=*/2.0, /*expiry_every=*/1.0);
  g.net->events().run_until(11.0);  // well past the original 4.0 deadline
  g.net->stop_soft_state();
  g.net->events().run();  // drain in-flight refresh walks

  EXPECT_TRUE(g.net->locate(g.ids[17], guid).found)
      << "periodic republish must keep the pointer path alive";
  EXPECT_GT(g.net->total_object_pointers(), 0u);
}

TEST(ChurnEngine, ExpiryTimerWithoutRepublishDropsEveryPointer) {
  TapestryParams p = small_params();
  p.pointer_ttl = 4.0;
  auto g = test::grow_ring_network(32, 13, p);
  const Guid guid = make_guid(*g.net, 99);
  g.net->publish(g.ids[3], guid);
  EXPECT_GT(g.net->total_object_pointers(), 0u);

  g.net->start_soft_state(/*republish_every=*/0.0, /*expiry_every=*/1.0);
  g.net->events().run_until(10.0);
  g.net->stop_soft_state();
  g.net->events().run();

  EXPECT_EQ(g.net->total_object_pointers(), 0u)
      << "expiry sweeps must reclaim every stale pointer";
  EXPECT_FALSE(g.net->locate(g.ids[17], guid).found);
}

TEST(ChurnEngine, HeartbeatTimerRepairsCrashDamage) {
  TapestryParams p = small_params();
  auto g = test::grow_ring_network(48, 23, p);
  const Guid guid = make_guid(*g.net, 123);
  const NodeId server = g.ids[7];
  g.net->publish(server, guid);

  // Crash two non-server nodes; the timer-driven sweeps must restore
  // Property 1 without any explicit maintenance call.
  int crashed = 0;
  for (const NodeId& id : g.ids) {
    if (id == server) continue;
    g.net->fail(id);
    if (++crashed == 2) break;
  }
  g.net->start_heartbeats(1.0);
  g.net->events().run_until(2.5);
  g.net->stop_heartbeats();
  g.net->events().run();

  g.net->check_property1();
  EXPECT_TRUE(g.net->locate(g.ids[40], guid).found);
}

// ------------------------------------------------------------- drain bucket

// Regression: epoch_now() used to clamp every post-horizon timestamp into
// the final epoch, so completions of operations still in flight when the
// scenario ended were silently attributed to the last epoch and skewed its
// availability/traffic statistics.  Drained events get a terminal bucket.
TEST(ChurnEngine, DrainedCompletionsLandInTerminalBucketNotLastEpoch) {
  TapestryParams p = small_params();
  p.pointer_ttl = 8.0;
  // Slow hops make in-flight queries span the horizon reliably.
  p.hop_delay_scale = 4.0;
  auto g = test::grow_ring_network(48, 31, p);
  ChurnScenario sc = small_scenario(31, false);
  sc.query_rate = 40.0;  // a dense tail of queries straddles the horizon
  ChurnDriver driver(*g.net, sc);
  const ChurnReport rep = driver.run();

  // The scenario must genuinely exercise the drain path.
  ASSERT_GT(rep.drain.queries, 0u)
      << "no query completed after the horizon; scenario too tame to "
         "regress-test the drain bucket";
  EXPECT_GE(rep.drain.t1, rep.drain.t0);
  EXPECT_DOUBLE_EQ(rep.drain.t0, rep.epochs.back().t1);

  // Epoch buckets only hold what completed inside their own windows; the
  // drained completions are not clamped into the last epoch.
  std::size_t epoch_queries = 0, epoch_found = 0;
  for (const ChurnEpoch& e : rep.epochs) {
    epoch_queries += e.queries;
    epoch_found += e.found;
  }
  EXPECT_EQ(epoch_queries + rep.drain.queries, rep.queries)
      << "totals must equal epoch buckets plus the drain bucket";
  EXPECT_EQ(epoch_found + rep.drain.found, rep.found);

  // Churn processes stop at the horizon: the drain bucket never records
  // joins/leaves/fails, only completions and their traffic.
  EXPECT_EQ(rep.drain.joins, 0u);
  EXPECT_EQ(rep.drain.leaves, 0u);
  EXPECT_EQ(rep.drain.fails, 0u);

  // And the terminal bucket is replay-deterministic like everything else.
  auto g2 = test::grow_ring_network(48, 31, p);
  ChurnDriver driver2(*g2.net, sc);
  const ChurnReport rep2 = driver2.run();
  EXPECT_EQ(rep.drain.queries, rep2.drain.queries);
  EXPECT_EQ(rep.drain.found, rep2.drain.found);
  EXPECT_EQ(rep.drain.maintenance_msgs, rep2.drain.maintenance_msgs);
}

// ------------------------------------------------------------------- soak

TEST(ChurnEngine, EventEngineSoakEndsConsistent) {
  TapestryParams p = small_params();
  p.pointer_ttl = 8.0;
  auto g = test::grow_ring_network(48, 17, p);
  ChurnDriver driver(*g.net, small_scenario(17, false));
  const ChurnReport rep = driver.run();

  EXPECT_GT(rep.queries, 50u);
  EXPECT_GE(rep.availability(), 0.5);
  EXPECT_LE(rep.found, rep.queries);
  EXPECT_EQ(g.net->async_in_flight(), 0u);

  // After one synchronous maintenance boundary the strong guarantees of
  // §6.5 are restored on whatever population the churn left behind.
  g.net->heartbeat_sweep();
  g.net->expire_pointers();
  g.net->republish_all();
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  g.net->check_property4();
}

}  // namespace
}  // namespace tap
