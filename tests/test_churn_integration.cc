// Integration soak: sustained, randomized churn — joins, voluntary leaves,
// involuntary failures, publishes, unpublishes, lookups, periodic soft-
// state republish — with invariants audited along the way.  This is the
// "does the whole §3-§6 machinery compose" test.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/common/stats.h"
#include "src/sim/churn_driver.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

class ChurnSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSoakTest, InvariantsSurviveSustainedChurn) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  RingMetric space(512, rng);
  TapestryParams params = small_params();
  params.pointer_ttl = 50.0;
  Network net(space, params, seed * 31 + 7);

  std::vector<Location> free_locs;
  for (std::size_t i = 128; i < 512; ++i) free_locs.push_back(i);
  net.bootstrap(0);
  for (std::size_t i = 1; i < 128; ++i) net.join(i);

  // Live objects: guid -> live servers (our own mirror of ground truth).
  std::map<std::uint64_t, std::pair<Guid, std::set<std::uint64_t>>> objects;
  int next_obj = 0;
  auto random_node = [&]() {
    auto ids = net.node_ids();
    return ids[rng.next_u64(ids.size())];
  };

  double clock = 0.0;
  int republish_phase = 0;
  for (int step = 0; step < 400; ++step) {
    clock += 0.1;
    net.events().run_until(clock);
    const double dice = rng.next_double();
    if (dice < 0.15 && !free_locs.empty()) {
      // Join at a fresh location.
      const Location loc = free_locs.back();
      free_locs.pop_back();
      net.join(loc);
    } else if (dice < 0.25 && net.size() > 32) {
      // Voluntary departure; our mirror drops its replicas.
      const NodeId victim = random_node();
      const Location loc = net.node(victim).location();
      net.leave(victim);
      free_locs.push_back(loc);
      for (auto& [key, entry] : objects) entry.second.erase(victim.value());
    } else if (dice < 0.32 && net.size() > 32) {
      // Involuntary failure; replicas on the corpse are gone.
      const NodeId victim = random_node();
      net.fail(victim);
      for (auto& [key, entry] : objects) entry.second.erase(victim.value());
    } else if (dice < 0.50) {
      // Publish a new object (or another replica of an old one).
      const NodeId server = random_node();
      if (!objects.empty() && rng.bernoulli(0.3)) {
        auto it = objects.begin();
        std::advance(it, rng.next_u64(objects.size()));
        net.publish(server, it->second.first);
        it->second.second.insert(server.value());
      } else {
        const Guid guid = make_guid(net, 10000 + next_obj++);
        net.publish(server, guid);
        objects[guid.value()] = {guid, {server.value()}};
      }
    } else if (dice < 0.58 && !objects.empty()) {
      // Unpublish a replica.
      auto it = objects.begin();
      std::advance(it, rng.next_u64(objects.size()));
      if (!it->second.second.empty()) {
        const NodeId server(net.params().id, *it->second.second.begin());
        if (net.contains(server)) net.unpublish(server, it->second.first);
        it->second.second.erase(server.value());
      }
    } else if (!objects.empty()) {
      // Lookup: any object with a live replica and a refreshed pointer
      // path must be found.  After failures, availability is restored at
      // the republish boundary, so only assert hard guarantees right
      // after a republish round.
      auto it = objects.begin();
      std::advance(it, rng.next_u64(objects.size()));
      const bool has_live_replica = !it->second.second.empty();
      const LocateResult r = net.locate(random_node(), it->second.first);
      if (!has_live_replica) {
        EXPECT_FALSE(r.found) << "located an object with no live replica";
      }
    }

    if (step % 50 == 49) {
      // Soft-state boundary: heartbeat maintenance discovers the corpses,
      // expired pointers are purged and everything is republished — then
      // the strong guarantees must hold.
      net.heartbeat_sweep();
      net.expire_pointers();
      net.republish_all();
      ++republish_phase;
      net.check_property1();
      net.check_backpointer_symmetry();
      net.check_property4();
      // Every object with a live replica is now locatable from anywhere.
      for (auto& [key, entry] : objects) {
        if (entry.second.empty()) continue;
        const LocateResult r = net.locate(random_node(), entry.first);
        EXPECT_TRUE(r.found)
            << "object " << entry.first.to_string()
            << " lost despite live replicas (phase " << republish_phase << ")";
      }
    }
  }
  EXPECT_GT(republish_phase, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSoakTest,
                         ::testing::Values(1ull, 2ull, 3ull),
                         [](const auto& ti) {
                           return "seed" + std::to_string(ti.param);
                         });

// The event-driven engine decomposes publish/locate into per-hop events
// and runs maintenance on timers; the synchronous engine executes the
// *same* scripted scenario (same driver seed, hence identical churn and
// query schedules) with atomic operations and batch maintenance.  The two
// executions interleave differently, so individual query outcomes may
// differ — but aggregate availability measures the same soft-state
// machinery and must agree within a small tolerance.
TEST(ChurnIntegration, SyncAndEventEnginesAgreeOnAvailability) {
  auto run_engine = [](bool synchronous) {
    TapestryParams p = small_params();
    p.pointer_ttl = 6.0;
    auto g = test::grow_ring_network(64, 21, p);
    ChurnScenario sc;
    sc.horizon = 24.0;
    sc.epoch = 6.0;
    sc.join_rate = 0.6;
    sc.leave_rate = 0.5;
    sc.fail_rate = 1.2;  // harsh: availability must actually dip
    sc.min_nodes = 32;
    sc.query_rate = 16.0;
    sc.objects = 32;
    sc.replicas = 1;
    sc.republish_interval = 6.0;
    sc.expiry_interval = 3.0;
    sc.heartbeat_interval = 6.0;
    sc.seed = 21;
    sc.synchronous = synchronous;
    ChurnDriver driver(*g.net, sc);
    return driver.run();
  };
  const ChurnReport sync_rep = run_engine(true);
  const ChurnReport event_rep = run_engine(false);

  // Both engines ran the same schedule: the churn mix must match closely
  // (small drift is possible where an engine's liveness state diverges).
  EXPECT_GT(sync_rep.queries, 200u);
  EXPECT_GT(event_rep.queries, 200u);
  EXPECT_GT(sync_rep.fails, 10u) << "scenario must actually crash nodes";
  EXPECT_NEAR(static_cast<double>(sync_rep.fails),
              static_cast<double>(event_rep.fails), 3.0);

  EXPECT_GE(sync_rep.availability(), 0.85);
  EXPECT_GE(event_rep.availability(), 0.85);
  EXPECT_NEAR(sync_rep.availability(), event_rep.availability(), 0.05)
      << "sync engine: " << sync_rep.found << "/" << sync_rep.queries
      << ", event engine: " << event_rep.found << "/" << event_rep.queries;
}

TEST(ChurnIntegration, RootsStayUniqueUnderChurn) {
  Rng rng(9);
  RingMetric space(256, rng);
  Network net(space, small_params(), 99);
  net.bootstrap(0);
  for (std::size_t i = 1; i < 96; ++i) net.join(i);
  std::vector<Location> free_locs;
  for (std::size_t i = 96; i < 256; ++i) free_locs.push_back(i);

  for (int round = 0; round < 30; ++round) {
    // Churn a little.
    if (!free_locs.empty() && rng.bernoulli(0.6)) {
      net.join(free_locs.back());
      free_locs.pop_back();
    }
    if (net.size() > 48) {
      auto ids = net.node_ids();
      net.leave(ids[rng.next_u64(ids.size())]);
    }
    // Verify Theorem 2 on a few GUIDs.
    for (int obj = 0; obj < 5; ++obj) {
      const Guid guid = test::make_guid(net, 7000 + obj);
      std::set<std::uint64_t> roots;
      auto ids = net.node_ids();
      for (std::size_t i = 0; i < ids.size(); i += 7)
        roots.insert(net.route_to_root(ids[i], guid).root.value());
      ASSERT_EQ(roots.size(), 1u) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace tap
