// Thread-parallel dynamic insertion (§4.4 on real threads): batches of
// joins driven by ThreadedJoinDriver across sim/thread_pool workers must
// converge — for the same seed at ANY worker count — to a table set
// satisfying the §4.4 invariants (Property 1, backpointer symmetry, no
// leftover pins, surrogate agreement), while deliberately racing guarded
// store batch publishes and expiry sweeps.  The whole binary runs under
// TSan in CI: these tests are where real threads genuinely contend on the
// routing tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/tapestry/fingerprint.h"
#include "src/tapestry/threaded_join.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;
using test::static_ring_network;

std::vector<JoinRequest> wave_requests(std::size_t core, std::size_t count) {
  std::vector<JoinRequest> reqs(count);
  for (std::size_t i = 0; i < count; ++i) reqs[i].loc = core + i;
  return reqs;
}

void expect_no_pins(const Network& net) {
  for (const auto& n : net.registry().nodes()) {
    if (!n->alive) continue;
    const RoutingTable& t = n->table();
    for (unsigned l = 0; l < t.levels(); ++l)
      for (unsigned j = 0; j < t.radix(); ++j)
        ASSERT_TRUE(t.at(l, j).pinned_members().empty())
            << "leftover pin at " << n->id().to_string() << " slot (" << l
            << "," << j << ")";
  }
}

void expect_surrogate_agreement(Network& net, std::uint64_t salt,
                                std::size_t objects) {
  // Theorem 2 on the converged mesh: every start reaches the same root.
  const auto ids = net.node_ids();
  for (std::size_t k = 0; k < objects; ++k) {
    const Guid guid = make_guid(net, salt + k);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : ids)
      roots.insert(net.router().route_to_root_peek(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u) << "root disagreement for object " << k;
  }
}

TEST(ThreadedJoin, SingleJoinMatchesInvariants) {
  auto g = static_ring_network(64, 220);
  const auto ids = g.net->join_bulk(wave_requests(64, 1), /*workers=*/1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(g.net->contains(ids[0]));
  EXPECT_FALSE(g.net->node(ids[0]).inserting);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  expect_no_pins(*g.net);
}

TEST(ThreadedJoin, WaveConvergesForEveryWorkerCount) {
  // Same seed, workers 1/2/4/8: identical membership (ids are drawn
  // serially), Property 1, symmetric backpointers, no pins — and identical
  // occupancy fingerprints, the invariant-convergent §4.4 witness (the
  // members filling each slot may differ with message ordering; the
  // pattern of filled slots may not).
  std::vector<std::uint64_t> member_fp;
  std::vector<std::uint64_t> occupancy_fp;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    auto g = static_ring_network(96, 221);
    const auto ids = g.net->join_bulk(wave_requests(96, 24), workers);
    EXPECT_EQ(g.net->size(), 96u + 24u) << "workers=" << workers;

    detail::Fnv1a members;
    std::vector<std::uint64_t> sorted;
    for (const NodeId& id : ids) sorted.push_back(id.value());
    std::sort(sorted.begin(), sorted.end());
    for (const std::uint64_t v : sorted) members.mix(v);
    member_fp.push_back(members.value());

    g.net->check_property1();
    g.net->check_backpointer_symmetry();
    expect_no_pins(*g.net);
    for (const NodeId& id : ids) EXPECT_FALSE(g.net->node(id).inserting);
    occupancy_fp.push_back(fingerprint_occupancy(*g.net));
    expect_surrogate_agreement(*g.net, 7000, 4);
  }
  for (std::size_t i = 1; i < member_fp.size(); ++i) {
    EXPECT_EQ(member_fp[0], member_fp[i])
        << "membership must not depend on the worker count";
    EXPECT_EQ(occupancy_fp[0], occupancy_fp[i])
        << "occupancy pattern must not depend on the worker count";
  }
}

TEST(ThreadedJoin, RepeatedSeedsConverge) {
  // Shake the interleavings: several seeds, 4 workers each, full invariant
  // sweep after every wave.
  for (const std::uint64_t seed : {301u, 302u, 303u}) {
    auto g = static_ring_network(80, seed);
    g.net->join_bulk(wave_requests(80, 32), /*workers=*/4);
    EXPECT_EQ(g.net->size(), 80u + 32u) << "seed " << seed;
    g.net->check_property1();
    g.net->check_backpointer_symmetry();
    expect_no_pins(*g.net);
  }
}

TEST(ThreadedJoin, WaveRacesShardedStoreBatchPublish) {
  // The acceptance wave: >= 64 dynamic joins on 4 real threads while a
  // guarded batch publish drains into ShardedStore stripes underneath
  // them.  After both settle, one soft-state republish (the paper's §6.5
  // backstop) must restore Property 4 and full locatability.
  TapestryParams p = small_params();
  p.store_backend = StoreBackend::kSharded;
  auto g = static_ring_network(192, 222, p);

  // A quiescent pre-wave workload, published serially.
  std::vector<Guid> guids;
  Rng wl(97);
  const auto core_ids = g.net->node_ids();
  for (int i = 0; i < 24; ++i) {
    const Guid guid = make_guid(*g.net, 9000 + i);
    guids.push_back(guid);
    g.net->publish(core_ids[wl.next_u64(core_ids.size())], guid);
  }

  // A second workload batch-published (guarded walks) WHILE the wave runs.
  std::vector<ObjectDirectory::PublishRequest> pubs;
  for (int i = 0; i < 48; ++i)
    pubs.push_back({core_ids[wl.next_u64(core_ids.size())],
                    make_guid(*g.net, 9500 + i)});

  std::thread racer([&] { g.net->publish_batch(pubs, 2, nullptr, true); });
  const auto ids = g.net->join_bulk(wave_requests(192, 64), /*workers=*/4);
  racer.join();

  EXPECT_EQ(ids.size(), 64u);
  EXPECT_EQ(g.net->size(), 192u + 64u);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  expect_no_pins(*g.net);
  expect_surrogate_agreement(*g.net, 7700, 4);

  // Soft-state backstop, then Property 4 and availability must hold for
  // both the quiescent and the racing workload.
  g.net->republish_all();
  g.net->check_property4();
  for (const auto& r : pubs) guids.push_back(r.guid);
  const auto all_ids = g.net->node_ids();
  Rng ql(98);
  for (const Guid& guid : guids)
    EXPECT_TRUE(
        g.net->locate(all_ids[ql.next_u64(all_ids.size())], guid).found);
}

TEST(ThreadedJoin, WaveRacesExpirySweeps) {
  // Multi-worker expiry sweeps (per-node store passes over a registry
  // snapshot) race the join wave's concurrent registrations.
  TapestryParams p = small_params();
  p.store_backend = StoreBackend::kSharded;
  p.pointer_ttl = 5.0;
  auto g = static_ring_network(96, 223, p);
  Rng wl(99);
  const auto core_ids = g.net->node_ids();
  std::vector<Guid> guids;
  for (int i = 0; i < 16; ++i) {
    const Guid guid = make_guid(*g.net, 9900 + i);
    guids.push_back(guid);
    g.net->publish(core_ids[wl.next_u64(core_ids.size())], guid);
  }

  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed))
      g.net->expire_pointers(/*workers=*/2);
  });
  g.net->join_bulk(wave_requests(96, 32), /*workers=*/4);
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();

  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  // Nothing reached its deadline (the clock never advanced), so the racing
  // sweeps must not have dropped a single pointer.
  g.net->republish_all();
  g.net->check_property4();
  const auto all_ids = g.net->node_ids();
  for (const Guid& guid : guids)
    EXPECT_TRUE(g.net->locate(all_ids[3], guid).found);
}

TEST(ThreadedJoin, GuardedPeekAgreesWithMutatingRouteAfterWave) {
  // Satellite of the peek-vs-mutating agreement suite, threaded side:
  // guarded peeks hammer the mesh from a prober thread while joins are
  // mid-flight with pinned entries present (any result is acceptable
  // mid-race as long as it is a live node and the walk terminates); once
  // quiescent, the guarded peek, the plain peek and the mutating walk must
  // agree on every sampled root.
  auto g = static_ring_network(96, 224);
  std::atomic<bool> stop{false};
  std::atomic<bool> dead_root{false};
  std::atomic<std::size_t> probes{0};
  const auto core_ids = g.net->node_ids();
  std::thread prober([&] {
    // gtest assertions are not thread-safe off the main thread; flag it.
    Rng pr(4321);
    while (!stop.load(std::memory_order_relaxed)) {
      const NodeId src = core_ids[pr.next_u64(core_ids.size())];
      const Guid target = make_guid(*g.net, 5000 + pr.next_u64(64));
      const RouteResult r = g.net->router().route_to_root_guarded(src, target);
      if (!g.net->registry().is_live(r.root))
        dead_root.store(true, std::memory_order_relaxed);
      probes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  g.net->join_bulk(wave_requests(96, 32), /*workers=*/4);
  stop.store(true, std::memory_order_relaxed);
  prober.join();
  EXPECT_GT(probes.load(), 0u) << "the prober must actually race the wave";
  EXPECT_FALSE(dead_root.load()) << "a guarded walk reached a dead root";

  Rng pr(8765);
  const auto ids = g.net->node_ids();
  for (int k = 0; k < 32; ++k) {
    const NodeId src = ids[pr.next_u64(ids.size())];
    const Guid target = make_guid(*g.net, 5000 + pr.next_u64(64));
    const NodeId peek = g.net->router().route_to_root_peek(src, target).root;
    const NodeId guarded =
        g.net->router().route_to_root_guarded(src, target).root;
    const NodeId mutating = g.net->route_to_root(src, target).root;
    EXPECT_EQ(peek.value(), guarded.value());
    EXPECT_EQ(peek.value(), mutating.value());
  }
}

TEST(ThreadedJoin, GrownCoreAcceptsThreadedWave) {
  // The wave also lands on a core built by the *dynamic* join protocol
  // (not the static oracle), stacking threaded state on organic tables.
  auto g = test::grow_ring_network(48, 225);
  g.net->join_bulk(wave_requests(48, 16), /*workers=*/4);
  EXPECT_EQ(g.net->size(), 48u + 16u);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  expect_no_pins(*g.net);
}

}  // namespace
}  // namespace tap
