// The Datagram transport seam: lossless wire round-trips for every
// message kind (randomized fuzz), WireError on every truncation/torn-tail
// corruption (never UB — this binary runs under ASan/UBSan in CI),
// factory validation, and direct-vs-loopback equivalence on real overlay
// traffic.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/common/assert.h"
#include "src/common/rng.h"
#include "src/tapestry/replicated_store.h"
#include "src/tapestry/transport.h"
#include "src/tapestry/wire.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;
using test::static_ring_network;

constexpr IdSpec kSpec{4, 8};  // the overlay default: radix 16, 8 digits

std::uint64_t id_mask() {
  return kSpec.total_bits() == 64
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << kSpec.total_bits()) - 1;
}

NodeId rand_id(Rng& rng) { return NodeId(kSpec, rng() & id_mask()); }

double rand_deadline(Rng& rng) {
  // Exercise the values deadlines actually take: finite simulated times
  // and the infinite default TTL.
  switch (rng.next_u64(4)) {
    case 0: return std::numeric_limits<double>::infinity();
    case 1: return 0.0;
    default: return static_cast<double>(rng.next_u64(1u << 20)) / 16.0;
  }
}

PointerRecord rand_record(Rng& rng) {
  PointerRecord rec;
  rec.server = rand_id(rng);
  if (rng.next_u64(2) == 0) rec.last_hop = rand_id(rng);
  rec.level = static_cast<unsigned>(rng.next_u64(9));
  rec.past_hole = rng.next_u64(2) == 0;
  rec.expires_at = rand_deadline(rng);
  return rec;
}

/// A random message of the given kind, populating exactly the fields the
/// kind carries on the wire (unencoded fields stay default so the decoded
/// copy compares equal).
Message rand_message(MessageKind kind, Rng& rng) {
  Message m = make_message(kind, rand_id(rng), rand_id(rng),
                           Id(kSpec, rng() & id_mask()));
  switch (kind) {
    case MessageKind::kRouteHop:
    case MessageKind::kLocateStep:
      m.level = static_cast<unsigned>(rng.next_u64(9));
      m.flag = rng.next_u64(2) == 0;
      break;
    case MessageKind::kPublishDeposit:
    case MessageKind::kPointerOptimize:
    case MessageKind::kReplicaWrite: {
      const PointerRecord rec = rand_record(rng);
      m.server = rec.server;
      m.last_hop = rec.last_hop;
      m.level = rec.level;
      m.flag = rec.past_hole;
      m.expires_at = rec.expires_at;
      break;
    }
    case MessageKind::kUnpublish:
    case MessageKind::kLocateFound:
    case MessageKind::kDeleteBackward:
    case MessageKind::kReplicaRemove:
      m.server = rand_id(rng);
      break;
    case MessageKind::kMulticastForward:
    case MessageKind::kMulticastAck:
      m.level = static_cast<unsigned>(rng.next_u64(9));
      break;
    case MessageKind::kHeartbeatProbe:
    case MessageKind::kReplicaRead:
      break;
    case MessageKind::kHeartbeatAck:
    case MessageKind::kReplicaWriteAck:
      m.flag = rng.next_u64(2) == 0;
      break;
    case MessageKind::kReplicaReadReply: {
      const std::size_t n = rng.next_u64(5);
      for (std::size_t i = 0; i < n; ++i)
        m.records.push_back(rand_record(rng));
      break;
    }
  }
  return m;
}

// ---------------------------------------------------------------------
// Wire round-trips
// ---------------------------------------------------------------------

TEST(Wire, EveryKindRoundTripsRandomized) {
  Rng rng(20020810);
  for (std::size_t k = 0; k < kWireKindCount; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    for (int trial = 0; trial < 200; ++trial) {
      const Message m = rand_message(kind, rng);
      const Datagram dg = encode(m);
      const Message back = decode(dg);
      EXPECT_TRUE(back == m)
          << message_kind_name(kind) << " trial " << trial;
    }
  }
}

TEST(Wire, InfiniteDeadlineSurvivesTheWire) {
  Rng rng(7);
  Message m = rand_message(MessageKind::kPublishDeposit, rng);
  m.expires_at = std::numeric_limits<double>::infinity();
  const Message back = decode(encode(m));
  EXPECT_TRUE(std::isinf(back.expires_at));
  EXPECT_GT(back.expires_at, 0.0);
}

TEST(Wire, KindNamesAreUniqueAndNamed) {
  std::set<std::string> names;
  for (std::size_t k = 0; k < kWireKindCount; ++k) {
    const std::string n = message_kind_name(static_cast<MessageKind>(k));
    EXPECT_NE(n, "unknown") << k;
    EXPECT_TRUE(names.insert(n).second) << n << " duplicated";
  }
}

// ---------------------------------------------------------------------
// Malformed input: WireError, never UB
// ---------------------------------------------------------------------

TEST(Wire, EveryTruncationIsRejected) {
  Rng rng(20020811);
  for (std::size_t k = 0; k < kWireKindCount; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    for (int trial = 0; trial < 20; ++trial) {
      const Message m = rand_message(kind, rng);
      const Datagram dg = encode(m);
      for (std::size_t cut = 0; cut < dg.size(); ++cut) {
        EXPECT_THROW((void)decode(dg.data(), cut), WireError)
            << message_kind_name(kind) << " cut at " << cut << "/"
            << dg.size();
      }
    }
  }
}

TEST(Wire, TrailingGarbageIsRejected) {
  Rng rng(20020812);
  for (std::size_t k = 0; k < kWireKindCount; ++k) {
    const Message m = rand_message(static_cast<MessageKind>(k), rng);
    std::vector<std::uint8_t> bytes = encode(m).release();
    bytes.push_back(0xab);  // one torn byte appended to a valid frame
    EXPECT_THROW((void)decode(bytes), WireError)
        << message_kind_name(m.kind);
  }
}

TEST(Wire, UnknownKindIsRejected) {
  Rng rng(3);
  std::vector<std::uint8_t> bytes =
      encode(rand_message(MessageKind::kHeartbeatProbe, rng)).release();
  bytes[0] = static_cast<std::uint8_t>(kWireKindCount);  // first bad tag
  EXPECT_THROW((void)decode(bytes), WireError);
  bytes[0] = 0xff;
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Wire, InvalidIdShapeIsRejected) {
  Rng rng(4);
  std::vector<std::uint8_t> bytes =
      encode(rand_message(MessageKind::kRouteHop, rng)).release();
  bytes[1] = 0;  // digit_bits = 0: invalid IdSpec
  EXPECT_THROW((void)decode(bytes), WireError);
  bytes[1] = 9;  // digit_bits > 8: invalid IdSpec
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Wire, IdValueOutsideNamespaceIsRejected) {
  Rng rng(5);
  const Message m = rand_message(MessageKind::kHeartbeatProbe, rng);
  std::vector<std::uint8_t> bytes = encode(m).release();
  // src value occupies bytes [3, 11); kSpec covers 32 bits, so setting
  // the high half makes the value overflow the namespace.
  bytes[10] = 0xff;
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Wire, AbsurdRecordCountIsRejectedBeforeAllocation) {
  Rng rng(6);
  Message m = rand_message(MessageKind::kReplicaReadReply, rng);
  m.records.clear();
  std::vector<std::uint8_t> bytes = encode(m).release();
  // Patch the record count (last 4 payload bytes) to ~4 billion; decode
  // must reject it from the remaining-byte bound, not try to reserve.
  const std::size_t count_at = bytes.size() - 4;
  bytes[count_at] = bytes[count_at + 1] = bytes[count_at + 2] =
      bytes[count_at + 3] = 0xff;
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Wire, RandomBytesNeverCrash) {
  // Adversarial fuzz: random buffers either decode (rarely) or throw
  // WireError; under ASan/UBSan this proves the reader is bounds-safe.
  Rng rng(20020813);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::size_t n = rng.next_u64(64);
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.next_u64(256));
    try {
      (void)decode(bytes);
    } catch (const WireError&) {
      // expected for almost all inputs
    }
  }
}

// ---------------------------------------------------------------------
// Transport selection
// ---------------------------------------------------------------------

TEST(Transport, FactoryBuildsTheSelectedKind) {
  TapestryParams p;
  p.transport = TransportKind::kDirect;
  EXPECT_STREQ(make_transport(p)->name(), "direct");
  p.transport = TransportKind::kLoopback;
  EXPECT_STREQ(make_transport(p)->name(), "loopback");
}

TEST(Transport, FactoryRejectsUnknownKindListingChoices) {
  TapestryParams p;
  p.transport = static_cast<TransportKind>(99);
  try {
    (void)make_transport(p);
    FAIL() << "make_transport accepted an unknown TransportKind";
  } catch (const CheckError& e) {
    EXPECT_NE(std::strstr(e.what(), "direct"), nullptr) << e.what();
    EXPECT_NE(std::strstr(e.what(), "loopback"), nullptr) << e.what();
  }
}

TEST(Transport, KindNamesMatchFlagValues) {
  EXPECT_STREQ(transport_kind_name(TransportKind::kDirect), "direct");
  EXPECT_STREQ(transport_kind_name(TransportKind::kLoopback), "loopback");
}

TEST(Transport, DirectDeliversUntouchedAndCounts) {
  DirectTransport t;
  Rng rng(8);
  const Message m = rand_message(MessageKind::kPublishDeposit, rng);
  const Message out = t.deliver(m);
  EXPECT_TRUE(out == m);
  EXPECT_EQ(t.stats().messages.load(), 1u);
  EXPECT_EQ(t.stats().bytes.load(), 0u);  // nothing serialized
  EXPECT_EQ(t.stats().kind_count(MessageKind::kPublishDeposit), 1u);
}

TEST(Transport, LoopbackRoundTripsThroughBytes) {
  LoopbackTransport t;
  Rng rng(9);
  std::uint64_t expect_bytes = 0;
  for (std::size_t k = 0; k < kWireKindCount; ++k) {
    const Message m = rand_message(static_cast<MessageKind>(k), rng);
    expect_bytes += encode(m).size();
    const Message out = t.deliver(m);
    EXPECT_TRUE(out == m) << message_kind_name(m.kind);
    EXPECT_EQ(t.stats().kind_count(m.kind), 1u);
  }
  EXPECT_EQ(t.stats().messages.load(), kWireKindCount);
  EXPECT_EQ(t.stats().bytes.load(), expect_bytes);  // every frame encoded
}

// ---------------------------------------------------------------------
// Overlay traffic: loopback === direct, every kind exercised
// ---------------------------------------------------------------------

/// Publishes `objects` guids and locates each from every node, returning
/// (found count, total hops) — a behavioral fingerprint of the overlay.
std::pair<std::size_t, std::size_t> publish_and_locate(
    Network& net, const std::vector<NodeId>& ids, std::size_t objects) {
  std::size_t found = 0;
  std::size_t hops = 0;
  for (std::size_t i = 0; i < objects; ++i) {
    const Guid g = make_guid(net, 1000 + i);
    net.publish(ids[i % ids.size()], g);
    for (const NodeId& from : ids) {
      const LocateResult r = net.locate(from, g);
      found += r.found ? 1 : 0;
      hops += r.hops;
    }
  }
  return {found, hops};
}

TEST(Transport, LoopbackMatchesDirectOnOverlayTraffic) {
  TapestryParams direct_p = small_params();
  direct_p.transport = TransportKind::kDirect;
  TapestryParams loop_p = direct_p;
  loop_p.transport = TransportKind::kLoopback;

  auto gd = grow_ring_network(48, 77, direct_p);
  auto gl = grow_ring_network(48, 77, loop_p);
  ASSERT_EQ(gd.ids.size(), gl.ids.size());

  const auto fd = publish_and_locate(*gd.net, gd.ids, 12);
  const auto fl = publish_and_locate(*gl.net, gl.ids, 12);
  EXPECT_EQ(fd.first, fl.first);   // same hits
  EXPECT_EQ(fd.second, fl.second); // same hop counts
  EXPECT_EQ(fd.first, 12u * gd.ids.size());  // and everything resolves

  // The direct overlay counted messages without serializing; the
  // loopback overlay pushed every one of them through the codec.
  EXPECT_GT(gd.net->transport().stats().messages.load(), 0u);
  EXPECT_EQ(gd.net->transport().stats().bytes.load(), 0u);
  EXPECT_GT(gl.net->transport().stats().messages.load(), 0u);
  EXPECT_GT(gl.net->transport().stats().bytes.load(), 0u);
}

TEST(Transport, OverlayLifecycleExercisesTheCoreKinds) {
  TapestryParams p = small_params();
  p.transport = TransportKind::kLoopback;
  auto g = grow_ring_network(64, 78, p);
  Network& net = *g.net;

  const Guid guid = make_guid(net, 5);
  net.publish(g.ids[1], guid);
  for (const NodeId& from : g.ids) EXPECT_TRUE(net.locate(from, guid).found);
  net.unpublish(g.ids[1], guid);

  // Multicast sweep + a failure so heartbeats see a corpse.
  net.multicast(g.ids[0], g.ids[0], 0, [](NodeId) {});
  net.fail(g.ids[2]);
  net.heartbeat_sweep();

  const TransportStats& s = net.transport().stats();
  for (const MessageKind kind :
       {MessageKind::kRouteHop, MessageKind::kPublishDeposit,
        MessageKind::kUnpublish, MessageKind::kLocateStep,
        MessageKind::kLocateFound, MessageKind::kMulticastForward,
        MessageKind::kMulticastAck, MessageKind::kHeartbeatProbe,
        MessageKind::kHeartbeatAck}) {
    EXPECT_GT(s.kind_count(kind), 0u) << message_kind_name(kind);
  }
  EXPECT_GT(s.bytes.load(), 0u);
}

TEST(Transport, ReplicaTrafficCrossesTheWire) {
  TapestryParams p = small_params();
  p.transport = TransportKind::kLoopback;
  p.store_backend = StoreBackend::kReplicated;
  auto g = static_ring_network(64, 79, p);
  Network& net = *g.net;
  QuorumReplicator* repl = net.directory().replicator();
  ASSERT_NE(repl, nullptr);

  const Guid guid = make_guid(net, 11);
  net.publish(g.ids[3], guid);  // mirrors to the holder set (write + ack)

  // A quorum read at the root probes R holders: a read request out and a
  // record-set reply back per responder, all through the wire.
  const Guid salted = salted_guid(guid, 0);
  const auto merged = repl->quorum_read(
      net.node(net.surrogate_root(salted)), salted, net.now(), nullptr);
  EXPECT_FALSE(merged.empty());

  net.unpublish(g.ids[3], guid);

  const TransportStats& s = net.transport().stats();
  EXPECT_GT(s.kind_count(MessageKind::kReplicaWrite), 0u);
  EXPECT_GT(s.kind_count(MessageKind::kReplicaWriteAck), 0u);
  EXPECT_GT(s.kind_count(MessageKind::kReplicaRead), 0u);
  EXPECT_GT(s.kind_count(MessageKind::kReplicaReadReply), 0u);
  EXPECT_GT(s.kind_count(MessageKind::kReplicaRemove), 0u);
}

TEST(Transport, PointerRerouteKindsFlowOnFailure) {
  TapestryParams p = small_params();
  p.transport = TransportKind::kLoopback;
  auto g = grow_ring_network(96, 80, p);
  Network& net = *g.net;

  for (std::uint64_t i = 0; i < 48; ++i)
    net.publish(g.ids[i % g.ids.size()], make_guid(net, 300 + i));

  // Kill a third of the overlay, sweep (purges reroute each holder's
  // pointers, §4.2) and mend stranded chains: enough topology change to
  // reliably produce both optimize deposits and backward deletes.
  for (std::size_t i = 0; i < 32; ++i) net.fail(g.ids[3 * i + 1]);
  net.heartbeat_sweep();
  net.directory().repair_pointer_chains();

  const TransportStats& s = net.transport().stats();
  EXPECT_GT(s.kind_count(MessageKind::kPointerOptimize), 0u);
  EXPECT_GT(s.kind_count(MessageKind::kDeleteBackward), 0u);
}

}  // namespace
}  // namespace tap
