// Locate cache + hotspot replication (ISSUE 6): LRU bounds, verify-at-
// holder fallback semantics (crash / unpublish / expiry must agree with
// the uncached path), event-queue interleaving sweeps, and the demand-
// driven promote/demote policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "src/tapestry/hotspot.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

TapestryParams cached_params(std::size_t cache = 64) {
  TapestryParams p = small_params();
  p.locate_cache_size = cache;
  return p;
}

NodeId pick_client(const test::GrownNetwork& g, const Guid& guid,
                   const NodeId& server) {
  const NodeId root = g.net->surrogate_root(guid);
  for (const NodeId& id : g.ids)
    if (!(id == root) && !(id == server)) return id;
  return g.ids[0];
}

// ------------------------------------------------------------ LocateCache unit

TEST(LocateCache, LruBoundAndEviction) {
  const IdSpec spec{4, 8};
  LocateCache cache(3, std::numeric_limits<double>::infinity());
  const NodeId at(spec, 0x11);
  auto guid = [&](std::uint64_t v) { return Guid(spec, v); };
  auto entry = [&](std::uint64_t v) {
    return LocateCache::Entry{guid(v), NodeId(spec, 0x22), NodeId(spec, 0x33),
                              100.0};
  };
  for (std::uint64_t v = 1; v <= 5; ++v)
    cache.insert(at, guid(v), entry(v), 0.0);
  EXPECT_EQ(cache.entries_at(at), 3u) << "capacity must bound the LRU";
  // 1 and 2 were evicted as stalest; 3..5 survive.
  EXPECT_FALSE(cache.lookup(at, guid(1), 0.0).has_value());
  EXPECT_FALSE(cache.lookup(at, guid(2), 0.0).has_value());
  EXPECT_TRUE(cache.lookup(at, guid(3), 0.0).has_value());
  // Touching 3 makes 4 the eviction victim for the next insert.
  cache.insert(at, guid(6), entry(6), 0.0);
  EXPECT_FALSE(cache.lookup(at, guid(4), 0.0).has_value());
  EXPECT_TRUE(cache.lookup(at, guid(3), 0.0).has_value());
  EXPECT_TRUE(cache.lookup(at, guid(6), 0.0).has_value());
}

TEST(LocateCache, TtlClampAndExpiry) {
  const IdSpec spec{4, 8};
  LocateCache cache(8, /*ttl=*/2.0);
  const NodeId at(spec, 0x11);
  const Guid g(spec, 7);
  // Record deadline far out; the cache's own ttl must clamp it.
  cache.insert(at, g,
               LocateCache::Entry{g, NodeId(spec, 0x22), NodeId(spec, 0x33),
                                  100.0},
               /*now=*/1.0);
  EXPECT_TRUE(cache.lookup(at, g, 2.9).has_value());
  EXPECT_FALSE(cache.lookup(at, g, 3.1).has_value()) << "now + ttl passed";
  EXPECT_EQ(cache.stats().expired, 1u);
  // A record already past its deadline is never cached.
  cache.insert(at, g,
               LocateCache::Entry{g, NodeId(spec, 0x22), NodeId(spec, 0x33),
                                  0.5},
               /*now=*/1.0);
  EXPECT_EQ(cache.entries_at(at), 0u);
}

TEST(LocateCache, InvalidateByObjectAndByNode) {
  const IdSpec spec{4, 8};
  LocateCache cache(8, std::numeric_limits<double>::infinity());
  const NodeId a(spec, 0x11), b(spec, 0x12);
  const NodeId holder(spec, 0x22), server(spec, 0x33);
  const Guid g1(spec, 1), g2(spec, 2);
  cache.insert(a, g1, {g1, holder, server, 100.0}, 0.0);
  cache.insert(b, g1, {g1, holder, server, 100.0}, 0.0);
  cache.insert(b, g2, {g2, server, server, 100.0}, 0.0);
  cache.invalidate_object(g1);
  EXPECT_FALSE(cache.lookup(a, g1, 0.0).has_value());
  EXPECT_FALSE(cache.lookup(b, g1, 0.0).has_value());
  EXPECT_TRUE(cache.lookup(b, g2, 0.0).has_value());
  // Node death sweeps entries naming the corpse as holder or server, and
  // the corpse's own LRU.
  cache.insert(a, g1, {g1, holder, server, 100.0}, 0.0);
  cache.insert(holder, g2, {g2, server, server, 100.0}, 0.0);
  cache.invalidate_node(holder);
  EXPECT_FALSE(cache.lookup(a, g1, 0.0).has_value());
  EXPECT_EQ(cache.entries_at(holder), 0u);
  cache.invalidate_node(server);
  EXPECT_FALSE(cache.lookup(b, g2, 0.0).has_value());
  EXPECT_EQ(cache.entries(), 0u);
}

// ------------------------------------------------- cached locate = uncached

TEST(HotspotCache, RepeatLocateHitsCacheAndAgrees) {
  auto g = test::static_ring_network(64, 11, cached_params());
  const Guid guid = make_guid(*g.net, 500);
  const NodeId server = g.ids[3];
  g.net->publish(server, guid);
  const NodeId client = pick_client(g, guid, server);

  const LocateResult cold = g.net->locate(client, guid);
  ASSERT_TRUE(cold.found);
  EXPECT_EQ(g.net->directory().locate_cache().stats().hits, 0u);

  const LocateResult warm = g.net->locate(client, guid);
  ASSERT_TRUE(warm.found);
  EXPECT_EQ(warm.server, cold.server);
  EXPECT_EQ(warm.pointer_node, cold.pointer_node)
      << "the hint jumps to the very holder the walk would reach";
  EXPECT_LE(warm.hops, cold.hops);
  EXPECT_GE(g.net->directory().locate_cache().stats().hits, 1u);
}

TEST(HotspotCache, UnpublishInvalidatesEverywhere) {
  auto g = test::static_ring_network(64, 12, cached_params());
  const Guid guid = make_guid(*g.net, 501);
  const NodeId server = g.ids[5];
  g.net->publish(server, guid);
  const NodeId client = pick_client(g, guid, server);
  ASSERT_TRUE(g.net->locate(client, guid).found);  // warm the path caches
  ASSERT_GT(g.net->directory().locate_cache().entries(), 0u);

  g.net->unpublish(server, guid);
  EXPECT_EQ(g.net->directory().locate_cache().entries(), 0u)
      << "unpublish must drop every node's hint for the object";
  const LocateResult after = g.net->locate(client, guid);
  EXPECT_FALSE(after.found) << "cached locate must agree with uncached";
}

TEST(HotspotCache, ReplicaCrashFallsBackToSurvivingReplica) {
  auto g = test::static_ring_network(64, 13, cached_params());
  const Guid guid = make_guid(*g.net, 502);
  const NodeId s1 = g.ids[3], s2 = g.ids[40];
  g.net->publish(s1, guid);
  g.net->publish(s2, guid);
  const NodeId client = pick_client(g, guid, s1);

  const LocateResult cold = g.net->locate(client, guid);
  ASSERT_TRUE(cold.found);

  // Crash whichever replica the cached hint names; the hint is dropped by
  // the node-death sweep, and the re-issued query must still find the
  // survivor (fall back to the walk, not fail).
  const NodeId victim = cold.server;
  const NodeId survivor = victim == s1 ? s2 : s1;
  g.net->fail(victim);
  const LocateResult after = g.net->locate(client, guid);
  ASSERT_TRUE(after.found) << "a cached dead replica must fall back, not fail";
  EXPECT_EQ(after.server, survivor);
}

TEST(HotspotCache, SingleReplicaCrashAgreesWithUncachedTwin) {
  auto make = [](std::size_t cache) {
    return test::static_ring_network(64, 14, cached_params(cache));
  };
  auto cached = make(64);
  auto uncached = make(0);
  const Guid guid = make_guid(*cached.net, 503);
  const NodeId server = cached.ids[7];
  cached.net->publish(server, guid);
  uncached.net->publish(server, guid);
  const NodeId client = pick_client(cached, guid, server);
  ASSERT_TRUE(cached.net->locate(client, guid).found);
  ASSERT_TRUE(uncached.net->locate(client, guid).found);

  cached.net->fail(server);
  uncached.net->fail(server);
  EXPECT_EQ(cached.net->locate(client, guid).found,
            uncached.net->locate(client, guid).found);
  EXPECT_FALSE(cached.net->locate(client, guid).found);
}

TEST(HotspotCache, PointerExpiryAgreesWithUncachedTwin) {
  auto make = [](std::size_t cache) {
    TapestryParams p = cached_params(cache);
    p.pointer_ttl = 4.0;
    return test::static_ring_network(48, 15, p);
  };
  auto cached = make(64);
  auto uncached = make(0);
  const Guid guid = make_guid(*cached.net, 504);
  const NodeId server = cached.ids[9];
  cached.net->publish(server, guid);
  uncached.net->publish(server, guid);
  const NodeId client = pick_client(cached, guid, server);
  ASSERT_TRUE(cached.net->locate(client, guid).found);
  ASSERT_TRUE(uncached.net->locate(client, guid).found);

  // Sweep expired records past the TTL on both twins; no republish runs.
  for (auto* n : {cached.net.get(), uncached.net.get()}) {
    n->events().run_until(5.0);
    n->expire_pointers();
  }
  const LocateResult c = cached.net->locate(client, guid);
  const LocateResult u = uncached.net->locate(client, guid);
  EXPECT_EQ(c.found, u.found);
  EXPECT_FALSE(c.found)
      << "an expired pointer's hint must not outlive the record";
}

// -------------------------------------------------- event-queue interleavings

// Crash the only replica at every phase of an async cached query — before
// it starts, at several in-flight instants, after it completed — and check
// the invariant the cache must preserve at every interleaving: a found
// result implies the query completed before the crash landed (it never
// reports a replica that was already dead), and a crash that precedes the
// query start yields the same miss the uncached twin reports.
TEST(HotspotCache, CrashInterleavingSweepNeverReportsDeadReplica) {
  // Measure the cached query's full in-flight window once.
  double window = 0.0;
  {
    auto g = test::static_ring_network(64, 16, cached_params());
    const Guid guid = make_guid(*g.net, 505);
    g.net->publish(g.ids[3], guid);
    const NodeId client = pick_client(g, guid, g.ids[3]);
    ASSERT_TRUE(g.net->locate(client, guid).found);  // warm caches
    std::optional<LocateResult> r;
    double done = 0.0;
    g.net->locate_async(client, guid, [&](const LocateResult& res) {
      r = res;
      done = g.net->now();
    });
    g.net->events().run();
    ASSERT_TRUE(r.has_value() && r->found);
    window = done;
  }
  ASSERT_GT(window, 0.0);

  for (const double frac : {-0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    const double offset = frac * window;
    auto run_one = [&](std::size_t cache) {
      auto g = test::static_ring_network(64, 16, cached_params(cache));
      const Guid guid = make_guid(*g.net, 505);
      const NodeId server = g.ids[3];
      g.net->publish(server, guid);
      const NodeId client = pick_client(g, guid, server);
      ASSERT_TRUE(g.net->locate(client, guid).found);  // warm (if cached)
      const double t0 = g.net->now();
      struct Out {
        std::optional<LocateResult> r;
        bool server_alive_at_done = false;
      };
      auto out = std::make_shared<Out>();
      if (offset <= 0.0) {
        g.net->fail(server);
      } else {
        g.net->events().schedule_at(t0 + offset,
                                    [&g, server] { g.net->fail(server); });
      }
      g.net->locate_async(client, guid, [&, out](const LocateResult& res) {
        out->r = res;
        out->server_alive_at_done = g.net->contains(server);
      });
      g.net->events().run();
      ASSERT_TRUE(out->r.has_value());
      if (out->r->found) {
        EXPECT_TRUE(out->server_alive_at_done)
            << "cache=" << cache << " offset=" << offset
            << ": found a replica that was already dead";
      }
      if (offset <= 0.0) {
        EXPECT_FALSE(out->r->found)
            << "cache=" << cache
            << ": crash before the query started must miss";
      }
    };
    run_one(64);  // cached
    run_one(0);   // uncached control obeys the same invariant
  }
}

// ------------------------------------------------------------ HotspotManager

TEST(HotspotManager, PromotesOnDemandAndDemotesOnDecay) {
  auto g = test::static_ring_network(64, 17, small_params());
  const Guid guid = make_guid(*g.net, 506);
  const NodeId server = g.ids[3];
  g.net->publish(server, guid);

  HotspotParams hp;
  hp.half_life = 1.0;
  hp.promote_threshold = 6.0;
  hp.demote_threshold = 2.0;
  hp.max_extra_replicas = 2;
  hp.check_interval = 1.0;
  HotspotManager mgr(g.net->registry(), g.net->directory(), g.net->events(),
                     hp, /*synchronous=*/true);

  ASSERT_EQ(g.net->servers_of(guid).size(), 1u);
  // Sustained demand from a handful of clients crosses the threshold and
  // publishes extra replicas at the heaviest demand sites.
  for (int round = 0; round < 10; ++round)
    for (int c = 10; c < 14; ++c)
      mgr.record_query(guid, g.ids[static_cast<std::size_t>(c)], true);
  EXPECT_GT(mgr.stats().promotions, 0u);
  const auto promoted = g.net->servers_of(guid);
  EXPECT_EQ(promoted.size(), 1u + mgr.stats().extra_live);
  EXPECT_GT(promoted.size(), 1u);
  // Extra replicas land at demand sites, not at the original server.
  for (const NodeId& s : promoted)
    if (!(s == server)) {
      const bool at_site =
          std::any_of(g.ids.begin() + 10, g.ids.begin() + 14,
                      [&](const NodeId& c) { return c == s; });
      EXPECT_TRUE(at_site);
    }

  // Demand stops; decay over a few half-lives demotes the extras through
  // the ordinary unpublish machinery, one per tick.
  mgr.start();
  g.net->events().run_until(g.net->now() + 12.0);
  mgr.stop();
  EXPECT_EQ(mgr.stats().extra_live, 0u);
  EXPECT_EQ(mgr.stats().demotions, mgr.stats().promotions);
  EXPECT_EQ(g.net->servers_of(guid).size(), 1u)
      << "decayed demand must withdraw every extra replica";
}

TEST(LocateCache, ExpiryEdgesAreInclusive) {
  // §6.5 conformance: a record whose deadline equals the clock is already
  // expired (the store treats now == expires_at as dead), so the cache
  // must agree on BOTH edges — never serve a hint at its deadline, never
  // admit an entry born at its deadline.
  const IdSpec spec{4, 8};
  LocateCache cache(8, std::numeric_limits<double>::infinity());
  const NodeId at(spec, 0x11);
  const Guid g(spec, 7);
  cache.insert(at, g,
               LocateCache::Entry{g, NodeId(spec, 0x22), NodeId(spec, 0x33),
                                  /*expires=*/5.0},
               /*now=*/0.0);
  EXPECT_TRUE(cache.lookup(at, g, 4.999).has_value());
  EXPECT_FALSE(cache.lookup(at, g, 5.0).has_value())
      << "now == expires must already be a miss, matching the store edge";
  EXPECT_EQ(cache.stats().expired, 1u);
  // Born exactly at the deadline: never cached at all.
  cache.insert(at, g,
               LocateCache::Entry{g, NodeId(spec, 0x22), NodeId(spec, 0x33),
                                  /*expires=*/1.0},
               /*now=*/1.0);
  EXPECT_EQ(cache.entries_at(at), 0u)
      << "an entry expiring at insertion time must be rejected";
}

TEST(HotspotManager, CapEvictsColdestInsteadOfDroppingNewDemand) {
  // At max_tracked, new demand must displace the coldest replica-free
  // state — not be silently ignored (the old behavior starved every
  // object that got hot after the cap filled).
  auto g = test::static_ring_network(32, 19, small_params());
  HotspotParams hp;
  hp.max_tracked = 3;
  HotspotManager mgr(g.net->registry(), g.net->directory(), g.net->events(),
                     hp, /*synchronous=*/true);
  auto guid = [&](std::uint64_t v) { return make_guid(*g.net, 600 + v); };
  // Distinct weights: g0 is the coldest.
  mgr.record_query(guid(0), g.ids[4], true);
  for (int i = 0; i < 2; ++i) mgr.record_query(guid(1), g.ids[4], true);
  for (int i = 0; i < 3; ++i) mgr.record_query(guid(2), g.ids[4], true);
  ASSERT_EQ(mgr.stats().tracked, 3u);

  mgr.record_query(guid(3), g.ids[5], true);
  EXPECT_EQ(mgr.stats().tracked, 3u);
  EXPECT_EQ(mgr.stats().cold_evictions, 1u);
  EXPECT_EQ(mgr.stats().track_drops, 0u);
  EXPECT_EQ(mgr.demand(guid(0)), 0.0) << "the coldest state was reclaimed";
  EXPECT_NEAR(mgr.demand(guid(3)), 1.0, 1e-9) << "new demand is tracked";

  // States that own extra replicas are not evictable: when every tracked
  // object holds replicas, overflow demand is counted as dropped instead.
  HotspotParams flash;
  flash.max_tracked = 1;
  flash.promote_threshold = 2.0;
  flash.demote_threshold = 0.5;
  flash.max_extra_replicas = 1;
  HotspotManager mgr2(g.net->registry(), g.net->directory(), g.net->events(),
                      flash, /*synchronous=*/true);
  const Guid hot = guid(8);
  g.net->publish(g.ids[2], hot);
  for (int i = 0; i < 4; ++i) mgr2.record_query(hot, g.ids[6], true);
  ASSERT_GT(mgr2.stats().promotions, 0u);
  mgr2.record_query(guid(9), g.ids[7], true);
  EXPECT_EQ(mgr2.stats().cold_evictions, 0u)
      << "a state holding replicas must never be evicted";
  EXPECT_EQ(mgr2.stats().track_drops, 1u);
  EXPECT_EQ(mgr2.demand(guid(9)), 0.0);
}

TEST(HotspotManager, CrashedPromotedSiteIsPrunedAndReplaced) {
  // Crash a promoted replica site mid-flash: the node-death hook must
  // drop it from the manager's `extra` book-keeping (no dead id holding a
  // replica slot), and continued demand must publish a replacement at a
  // surviving demand site.
  auto g = test::static_ring_network(64, 20, small_params());
  const Guid guid = make_guid(*g.net, 700);
  const NodeId server = g.ids[3];
  g.net->publish(server, guid);

  HotspotParams hp;
  hp.half_life = 8.0;
  hp.promote_threshold = 6.0;
  hp.max_extra_replicas = 1;
  HotspotManager mgr(g.net->registry(), g.net->directory(), g.net->events(),
                     hp, /*synchronous=*/true);

  for (int round = 0; round < 4; ++round)
    for (int c = 10; c < 14; ++c)
      mgr.record_query(guid, g.ids[static_cast<std::size_t>(c)], true);
  ASSERT_EQ(mgr.stats().promotions, 1u);
  ASSERT_EQ(mgr.stats().extra_live, 1u);

  // Find and crash the promoted site.
  NodeId victim{};
  for (const NodeId& s : g.net->servers_of(guid))
    if (!(s == server)) victim = s;
  g.net->fail(victim);
  EXPECT_GE(mgr.stats().extra_pruned, 1u)
      << "the death hook must drop the corpse from `extra`";
  EXPECT_EQ(mgr.stats().extra_live, 0u);

  // The flash is still on: the very next promotions check must replace
  // the lost replica at a live demand site (the dead id must not keep
  // occupying the max_extra_replicas budget).
  for (int round = 0; round < 4; ++round)
    for (int c = 10; c < 14; ++c)
      if (!(g.ids[static_cast<std::size_t>(c)] == victim))
        mgr.record_query(guid, g.ids[static_cast<std::size_t>(c)], true);
  EXPECT_EQ(mgr.stats().promotions, 2u);
  EXPECT_EQ(mgr.stats().extra_live, 1u);
  const auto sites = g.net->servers_of(guid);
  EXPECT_EQ(sites.size(), 2u) << "a replacement replica must be published";
  for (const NodeId& s : sites) EXPECT_TRUE(g.net->contains(s));
}

TEST(HotspotManager, DemandDecaysBetweenQueries) {
  auto g = test::static_ring_network(32, 18, small_params());
  const Guid guid = make_guid(*g.net, 507);
  g.net->publish(g.ids[2], guid);
  HotspotParams hp;
  hp.half_life = 2.0;
  HotspotManager mgr(g.net->registry(), g.net->directory(), g.net->events(),
                     hp, /*synchronous=*/true);
  mgr.record_query(guid, g.ids[4], true);
  mgr.record_query(guid, g.ids[4], true);
  const double d0 = mgr.demand(guid);
  EXPECT_NEAR(d0, 2.0, 1e-9);
  g.net->events().run_until(g.net->now() + 2.0);  // one half-life
  EXPECT_NEAR(mgr.demand(guid), d0 / 2.0, 1e-9);
}

}  // namespace
}  // namespace tap
