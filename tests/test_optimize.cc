// Object-pointer redistribution (§4.2, Figure 9), soft state (§6.5) and
// the continual-optimization heuristics (§6.4).
#include <gtest/gtest.h>

#include <set>

#include "src/common/stats.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;

TEST(PointerMaintenance, RepublishRefreshesExpiry) {
  TapestryParams p = small_params();
  p.pointer_ttl = 10.0;
  auto g = grow_ring_network(64, 100, p);
  const Guid guid = make_guid(*g.net, 1);
  g.net->publish(g.ids[3], guid);

  g.net->events().run_until(8.0);
  g.net->republish_all();
  g.net->events().run_until(15.0);  // past the original deadline
  g.net->expire_pointers();
  // Refreshed pointers (deadline 8+10=18) must still be there.
  EXPECT_TRUE(g.net->locate(g.ids[10], guid).found);

  g.net->events().run_until(30.0);  // past every deadline
  g.net->expire_pointers();
  EXPECT_FALSE(g.net->locate(g.ids[10], guid).found);
  EXPECT_EQ(g.net->total_object_pointers(), 0u);
}

TEST(PointerMaintenance, ExpiredPointersInvisibleBeforePurge) {
  TapestryParams p = small_params();
  p.pointer_ttl = 5.0;
  auto g = grow_ring_network(64, 101, p);
  const Guid guid = make_guid(*g.net, 2);
  g.net->publish(g.ids[3], guid);
  g.net->events().run_until(6.0);
  // Records still sit in the stores, but find_live filters them.
  EXPECT_FALSE(g.net->locate(g.ids[10], guid).found);
}

TEST(PointerMaintenance, NoDanglingPointersAfterManyJoins) {
  // Every stored pointer record must be justified: walking the pointer's
  // next hops from its holder must reach a node holding the same record or
  // the record's server, never a dead end caused by a stale last_hop.
  auto g = grow_ring_network(64, 102);
  Rng rng(1);
  std::vector<Guid> guids;
  for (int i = 0; i < 16; ++i) {
    const Guid guid = make_guid(*g.net, 100 + i);
    g.net->publish(g.ids[rng.next_u64(g.ids.size())], guid);
    guids.push_back(guid);
  }
  for (std::size_t i = 64; i < 112; ++i) g.net->join(i);
  g.net->check_property4();

  // Additionally: the root of every guid holds exactly the replicas that
  // were published (no duplicates, no losses).
  for (const Guid& guid : guids) {
    const NodeId root = g.net->surrogate_root(guid);
    const auto recs = g.net->node(root).store().find_all(guid);
    EXPECT_EQ(recs.size(), g.net->servers_of(guid).size());
  }
}

TEST(Relocation, StaleTablesUntilOptimized) {
  auto g = grow_ring_network(96, 103);
  // Move a third of the nodes to fresh locations (spares exist beyond n).
  Rng rng(2);
  auto ids = g.net->node_ids();
  for (int i = 0; i < 32; ++i)
    g.net->relocate(ids[rng.next_u64(ids.size())], 96 + i);
  const double drifted = g.net->property2_quality();
  EXPECT_LT(drifted, 0.995) << "drift should degrade locality";

  // Heuristic 2 (full rebuild) restores near-perfect locality.
  for (const NodeId& id : g.net->node_ids()) g.net->rebuild_neighbor_table(id);
  const double rebuilt = g.net->property2_quality();
  EXPECT_GT(rebuilt, drifted);
  EXPECT_GT(rebuilt, 0.95);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
}

TEST(Relocation, GossipImprovesQuality) {
  auto g = grow_ring_network(96, 104);
  Rng rng(3);
  auto ids = g.net->node_ids();
  for (int i = 0; i < 32; ++i)
    g.net->relocate(ids[rng.next_u64(ids.size())], 96 + i);
  const double drifted = g.net->property2_quality();
  for (int round = 0; round < 2; ++round)
    for (const NodeId& id : g.net->node_ids()) g.net->optimize_gossip(id);
  EXPECT_GE(g.net->property2_quality(), drifted);
  g.net->check_property1();
}

TEST(Relocation, PrimarySwapReranksExistingMembers) {
  auto g = grow_ring_network(64, 105);
  Rng rng(4);
  auto ids = g.net->node_ids();
  for (int i = 0; i < 16; ++i)
    g.net->relocate(ids[rng.next_u64(ids.size())], 64 + i);
  // Re-ranking never invents new members, so Property 1 must survive and
  // every stored distance must be fresh afterwards.
  for (const NodeId& id : g.net->node_ids()) g.net->optimize_primaries(id);
  g.net->check_property1();
  for (const NodeId& id : g.net->node_ids()) {
    const auto& table = g.net->node(id).table();
    for (unsigned l = 0; l < g.net->params().id.num_digits; ++l) {
      for (unsigned j = 0; j < 16; ++j) {
        for (const auto& e : table.at(l, j).entries()) {
          if (e.id == id) continue;
          EXPECT_NEAR(e.dist, g.net->distance(id, e.id), 1e-12);
        }
      }
    }
  }
}

TEST(Relocation, ObjectsRemainAvailableAfterDriftAndRepair) {
  auto g = grow_ring_network(96, 106);
  const Guid guid = make_guid(*g.net, 3);
  g.net->publish(g.ids[5], guid);
  Rng rng(5);
  auto ids = g.net->node_ids();
  for (int i = 0; i < 24; ++i)
    g.net->relocate(ids[rng.next_u64(ids.size())], 96 + i);
  for (const NodeId& id : g.net->node_ids()) g.net->rebuild_neighbor_table(id);
  g.net->republish_all();
  for (const NodeId& c : g.net->node_ids())
    EXPECT_TRUE(g.net->locate(c, guid).found);
  g.net->check_property4();
}

TEST(PointerMaintenance, UnpublishThenExpireLeavesNoGarbage) {
  TapestryParams p = small_params();
  p.pointer_ttl = 20.0;
  auto g = grow_ring_network(64, 107, p);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const Guid guid = make_guid(*g.net, 300 + i);
    const NodeId server = g.ids[rng.next_u64(g.ids.size())];
    g.net->publish(server, guid);
    g.net->unpublish(server, guid);
  }
  // Unpublish removed the records along the current paths; anything left
  // behind by path drift dies with the TTL.
  g.net->events().run_until(25.0);
  g.net->expire_pointers();
  EXPECT_EQ(g.net->total_object_pointers(), 0u);
}

}  // namespace
}  // namespace tap
