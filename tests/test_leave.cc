// Node deletion (§5): voluntary departure preserves all invariants and
// availability; involuntary failure is repaired lazily; objects rooted at
// a failed node come back after soft-state republish.
#include <gtest/gtest.h>

#include <set>

#include "src/common/stats.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;

TEST(VoluntaryLeave, InvariantsHoldAfterEachDeparture) {
  auto g = grow_ring_network(96, 80);
  Rng rng(1);
  // Remove a third of the network one node at a time.
  for (int i = 0; i < 32; ++i) {
    auto ids = g.net->node_ids();
    const NodeId victim = ids[rng.next_u64(ids.size())];
    g.net->leave(victim);
    g.net->check_property1();
  }
  g.net->check_backpointer_symmetry();
  EXPECT_EQ(g.net->size(), 64u);
}

TEST(VoluntaryLeave, ObjectsStayAvailableThroughDepartures) {
  auto g = grow_ring_network(128, 81);
  Rng rng(2);
  std::vector<Guid> guids;
  std::vector<NodeId> servers;
  for (int i = 0; i < 10; ++i) {
    const Guid guid = make_guid(*g.net, 500 + i);
    const NodeId server = g.ids[rng.next_u64(g.ids.size())];
    g.net->publish(server, guid);
    guids.push_back(guid);
    servers.push_back(server);
  }
  for (int round = 0; round < 40; ++round) {
    // Never remove a server (the replica itself would vanish with it — an
    // application-layer event, not an overlay failure).
    auto ids = g.net->node_ids();
    NodeId victim = ids[rng.next_u64(ids.size())];
    bool is_server = false;
    for (const NodeId& s : servers)
      if (s == victim) is_server = true;
    if (is_server) continue;
    g.net->leave(victim);
    for (std::size_t i = 0; i < guids.size(); ++i) {
      auto clients = g.net->node_ids();
      const NodeId client = clients[rng.next_u64(clients.size())];
      const LocateResult r = g.net->locate(client, guids[i]);
      ASSERT_TRUE(r.found) << "object lost after departure round " << round;
      EXPECT_EQ(r.server, servers[i]);
    }
  }
  g.net->check_property4();
}

TEST(VoluntaryLeave, ServerDepartureWithdrawsItsReplicas) {
  auto g = grow_ring_network(64, 82);
  const Guid guid = make_guid(*g.net, 9);
  g.net->publish(g.ids[10], guid);
  g.net->publish(g.ids[20], guid);
  g.net->leave(g.ids[10]);
  // The remaining replica serves every query.
  for (const NodeId& c : g.net->node_ids()) {
    const LocateResult r = g.net->locate(c, guid);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.server, g.ids[20]);
  }
  EXPECT_EQ(g.net->servers_of(guid).size(), 1u);
}

TEST(VoluntaryLeave, RootDepartureMigratesPointers) {
  auto g = grow_ring_network(96, 83);
  const Guid guid = make_guid(*g.net, 11);
  g.net->publish(g.ids[5], guid);
  const NodeId old_root = g.net->surrogate_root(guid);
  if (old_root == g.ids[5]) GTEST_SKIP() << "server happens to be root";
  g.net->leave(old_root);
  const NodeId new_root = g.net->surrogate_root(guid);
  EXPECT_FALSE(new_root == old_root);
  // The new root must already hold the pointer (availability was never
  // interrupted, §5.1).
  EXPECT_FALSE(g.net->node(new_root).store().find_all(guid).empty());
  for (const NodeId& c : g.net->node_ids())
    EXPECT_TRUE(g.net->locate(c, guid).found);
  g.net->check_property4();
}

TEST(VoluntaryLeave, DownToOneNode) {
  auto g = grow_ring_network(8, 84);
  while (g.net->size() > 1) {
    auto ids = g.net->node_ids();
    g.net->leave(ids.front());
    g.net->check_property1();
  }
  EXPECT_EQ(g.net->size(), 1u);
}

TEST(VoluntaryLeave, LeaveOfDeadNodeRejected) {
  auto g = grow_ring_network(16, 85);
  g.net->fail(g.ids[3]);
  EXPECT_THROW(g.net->leave(g.ids[3]), CheckError);
}

// ---------------------------------------------------------------- failure

TEST(InvoluntaryFail, LazyRepairRestoresRouting) {
  auto g = grow_ring_network(128, 86);
  Rng rng(3);
  // Kill 20% of the network without warning.
  for (int i = 0; i < 25; ++i) {
    auto ids = g.net->node_ids();
    g.net->fail(ids[rng.next_u64(ids.size())]);
  }
  // Routing still terminates and roots stay unique per GUID: exercise many
  // routes (each repairs tables as it trips over corpses).
  for (int obj = 0; obj < 30; ++obj) {
    const Guid guid = make_guid(*g.net, 700 + obj);
    auto ids = g.net->node_ids();
    std::set<std::uint64_t> roots;
    for (std::size_t i = 0; i < ids.size(); i += 5)
      roots.insert(g.net->route_to_root(ids[i], guid).root.value());
    EXPECT_EQ(roots.size(), 1u) << "roots diverge after failures";
  }
}

TEST(InvoluntaryFail, RepairConvergesToProperty1) {
  auto g = grow_ring_network(96, 87);
  Rng rng(4);
  for (int i = 0; i < 16; ++i) {
    auto ids = g.net->node_ids();
    g.net->fail(ids[rng.next_u64(ids.size())]);
  }
  // Drive repair by routing from everywhere to everywhere-ish.
  auto ids = g.net->node_ids();
  for (const NodeId& src : ids)
    for (int obj = 0; obj < 8; ++obj)
      (void)g.net->route_to_root(src, make_guid(*g.net, 800 + obj));
  // After the dust settles, no live table slot should still hold only
  // corpses while live candidates exist.
  g.net->check_property1();
}

TEST(InvoluntaryFail, ObjectsOnFailedPathsSurviveViaRepair) {
  auto g = grow_ring_network(128, 88);
  const Guid guid = make_guid(*g.net, 13);
  g.net->publish(g.ids[7], guid);
  const RouteResult path = g.net->route_to_root(g.ids[7], guid);
  // Fail an intermediate path node (not server, not root).
  if (path.path.size() < 3) GTEST_SKIP() << "publish path too short";
  const NodeId victim = path.path[1];
  g.net->fail(victim);
  // Queries still succeed: they repair around the corpse and, in the worst
  // case, meet the pointer at the root.
  for (const NodeId& c : g.net->node_ids())
    EXPECT_TRUE(g.net->locate(c, guid).found);
}

TEST(InvoluntaryFail, RootFailureRecoversAfterRepublish) {
  auto g = grow_ring_network(128, 89);
  const Guid guid = make_guid(*g.net, 14);
  g.net->publish(g.ids[9], guid);
  const NodeId root = g.net->surrogate_root(guid);
  if (root == g.ids[9]) GTEST_SKIP() << "server happens to be root";
  g.net->fail(root);

  // The paper accepts unavailability here until soft state refreshes
  // (§5.2): after republish, the object is found again by everyone.
  g.net->republish_all();
  for (const NodeId& c : g.net->node_ids())
    EXPECT_TRUE(g.net->locate(c, guid).found)
        << "object unavailable after republish";
  const NodeId new_root = g.net->surrogate_root(guid);
  EXPECT_FALSE(new_root == root);
}

TEST(InvoluntaryFail, DeadServerPointersPrunedLazily) {
  auto g = grow_ring_network(96, 90);
  const Guid guid = make_guid(*g.net, 15);
  g.net->publish(g.ids[11], guid);
  g.net->publish(g.ids[22], guid);
  g.net->fail(g.ids[11]);
  // Queries must skip the dead replica and settle on the live one.
  for (const NodeId& c : g.net->node_ids()) {
    const LocateResult r = g.net->locate(c, guid);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.server, g.ids[22]);
  }
}

TEST(InvoluntaryFail, FailedTwiceRejected) {
  auto g = grow_ring_network(16, 91);
  g.net->fail(g.ids[3]);
  EXPECT_THROW(g.net->fail(g.ids[3]), CheckError);
}

TEST(MixedChurn, JoinsAndLeavesInterleaved) {
  auto g = grow_ring_network(64, 92);
  Rng rng(5);
  std::size_t next_loc = 64;
  for (int round = 0; round < 60; ++round) {
    if (rng.bernoulli(0.5) && g.net->size() > 8) {
      auto ids = g.net->node_ids();
      g.net->leave(ids[rng.next_u64(ids.size())]);
    } else if (next_loc < 128) {
      g.net->join(next_loc++);
    }
  }
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  // Roots still unique.
  for (int obj = 0; obj < 10; ++obj) {
    const Guid guid = make_guid(*g.net, 900 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : g.net->node_ids())
      roots.insert(g.net->route_to_root(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u);
  }
}

}  // namespace
}  // namespace tap
