// Simulation substrate: event queue ordering/cancellation, trace
// accounting, thread-pool determinism, PRNG behaviour, statistics helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "src/common/assert.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sim/event_queue.h"
#include "src/sim/thread_pool.h"
#include "src/sim/trace.h"

namespace tap {
namespace {

// ----------------------------------------------------------------- events

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ActionsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_in(1.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CannotScheduleInThePast) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), CheckError);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PendingExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunGuardsAgainstRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_in(1.0, forever); };
  q.schedule_in(1.0, forever);
  EXPECT_THROW(q.run(100), CheckError);
}

// ------------------------------------------------------------------ trace

TEST(Trace, AccumulatesMessagesAndLatency) {
  Trace t;
  t.hop(1.5);
  t.hop(2.5);
  EXPECT_EQ(t.messages(), 2u);
  EXPECT_DOUBLE_EQ(t.latency(), 4.0);
}

TEST(Trace, PathRecordingIsOptIn) {
  Trace off(false);
  off.visit(7);
  EXPECT_TRUE(off.path().empty());
  Trace on(true);
  on.visit(7);
  on.visit(9);
  EXPECT_EQ(on.path(), (std::vector<std::uint64_t>{7, 9}));
}

TEST(Trace, AbsorbMergesSubOperation) {
  Trace outer;
  Trace inner;
  inner.hop(1.0);
  inner.hop(1.0);
  outer.hop(3.0);
  outer.absorb(inner);
  EXPECT_EQ(outer.messages(), 3u);
  EXPECT_DOUBLE_EQ(outer.latency(), 5.0);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TrialResultsInOrder) {
  const auto out = run_trials<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SeededTrialsDeterministicAcrossWorkerCounts) {
  auto trial = [](std::size_t i) {
    Rng rng(i);
    double acc = 0;
    for (int k = 0; k < 100; ++k) acc += rng.next_double();
    return acc;
  };
  const auto serial = run_trials<double>(32, trial, 1);
  const auto parallel = run_trials<double>(32, trial, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(
                   16, [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedDrawsInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_u64(17), 17u);
  EXPECT_THROW((void)rng.next_u64(0), CheckError);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(8);
  const auto p = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (std::size_t v : p) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

// ------------------------------------------------------------------ stats

TEST(Summary, MomentsAndPercentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
  EXPECT_NEAR(s.stddev(), 29.011, 0.01);
}

TEST(Summary, EmptyQueriesThrow) {
  Summary s;
  EXPECT_THROW((void)s.mean(), CheckError);
  EXPECT_THROW((void)s.percentile(50), CheckError);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyDataStillHighR2) {
  Rng rng(10);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(5.0 + 3.0 * i + rng.uniform(-1.0, 1.0));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.999);
}

}  // namespace
}  // namespace tap
