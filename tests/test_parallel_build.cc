// Concurrent overlay construction: the bulk pipeline (register_bulk +
// parallel rebuild_static_tables + publish_batch) must produce bit-identical
// results for every worker count and match the serial paths exactly; the
// sharded registry's lock-free snapshot reads must stay coherent while a
// bulk registration races them.  This binary is the ThreadSanitizer CI
// target for the sharded-registry / parallel-build / thread_pool machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/sim/thread_pool.h"
#include "src/tapestry/fingerprint.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

struct BulkNetwork {
  std::unique_ptr<MetricSpace> space;
  std::unique_ptr<Network> net;
  std::vector<NodeId> ids;
};

BulkNetwork bulk_ring_network(std::size_t n, std::uint64_t seed,
                              std::size_t workers) {
  BulkNetwork b;
  Rng rng(seed);
  b.space = std::make_unique<RingMetric>(n + 64, rng);
  b.net = std::make_unique<Network>(*b.space, small_params(), seed ^ 0xabcdef);
  std::vector<Location> locs(n);
  for (std::size_t i = 0; i < n; ++i) locs[i] = i;
  b.ids = b.net->insert_static_bulk(locs, workers);
  b.net->rebuild_static_tables(workers);
  return b;
}

// ---------------------------------------------------------------------
// Determinism: same seed + any thread count => identical tables
// ---------------------------------------------------------------------

TEST(ParallelBuild, DeterministicAcrossWorkerCounts) {
  const std::size_t n = 500;
  const auto reference = bulk_ring_network(n, 6, 1);
  const std::uint64_t want = fingerprint_tables(*reference.net);
  for (const std::size_t workers : {2ul, 3ul, 4ul, 8ul}) {
    const auto built = bulk_ring_network(n, 6, workers);
    EXPECT_EQ(fingerprint_tables(*built.net), want)
        << "tables diverged at " << workers << " workers";
    EXPECT_EQ(built.ids, reference.ids)
        << "id sequence diverged at " << workers << " workers";
  }
}

TEST(ParallelBuild, BulkPipelineMatchesSerialStaticBuild) {
  // Same seed: insert_static one by one + serial rebuild vs the bulk
  // registration + 4-worker rebuild.  The id draws and the final mesh
  // must be identical.
  const std::size_t n = 400;
  auto serial = test::static_ring_network(n, 9);
  auto bulk = bulk_ring_network(n, 9, 4);
  EXPECT_EQ(serial.ids, bulk.ids);
  EXPECT_EQ(fingerprint_tables(*serial.net), fingerprint_tables(*bulk.net));
}

TEST(ParallelBuild, SatisfiesOverlayInvariants) {
  auto b = bulk_ring_network(600, 12, 4);
  b.net->check_property1();
  b.net->check_backpointer_symmetry();
  // The static oracle is Property 2 (locality) by construction.
  EXPECT_DOUBLE_EQ(b.net->property2_quality(), 1.0);
}

// ---------------------------------------------------------------------
// publish_batch: concurrent drain == serial publish loop
// ---------------------------------------------------------------------

TEST(ParallelBuild, PublishBatchMatchesSerialPublish) {
  const std::size_t n = 300, objects = 120;
  auto a = bulk_ring_network(n, 15, 2);
  auto b = bulk_ring_network(n, 15, 4);
  ASSERT_EQ(a.ids, b.ids);

  std::vector<ObjectDirectory::PublishRequest> batch;
  Rng wl(99);
  for (std::size_t i = 0; i < objects; ++i)
    batch.push_back({a.ids[wl.next_u64(a.ids.size())], make_guid(*a.net, i)});

  Trace serial_trace, batch_trace;
  for (const auto& r : batch) a.net->publish(r.server, r.guid, &serial_trace);
  b.net->publish_batch(batch, 4, &batch_trace);

  EXPECT_EQ(fingerprint_stores(*a.net), fingerprint_stores(*b.net));
  EXPECT_EQ(serial_trace.messages(), batch_trace.messages());
  // Latency: same hop multiset, but summed in a different association
  // (per-task subtotals absorbed vs one running accumulator), so equality
  // holds only up to floating-point summation order.
  EXPECT_NEAR(serial_trace.latency(), batch_trace.latency(),
              1e-9 * std::max(1.0, serial_trace.latency()));
  for (const auto& r : batch)
    EXPECT_EQ(a.net->servers_of(r.guid), b.net->servers_of(r.guid));
  // Property 4 (every publish-path node holds the pointer) on the batch
  // result, and every object resolves from everywhere it should.
  b.net->check_property4();
  Rng qr(7);
  for (int q = 0; q < 200; ++q) {
    const auto& r = batch[qr.next_u64(batch.size())];
    EXPECT_TRUE(
        b.net->locate(b.ids[qr.next_u64(b.ids.size())], r.guid).found);
  }
}

TEST(ParallelBuild, PublishBatchDeterministicAcrossWorkers) {
  const std::size_t n = 300, objects = 100;
  std::optional<std::uint64_t> want;
  for (const std::size_t workers : {1ul, 4ul, 8ul}) {
    auto b = bulk_ring_network(n, 22, workers);
    std::vector<ObjectDirectory::PublishRequest> batch;
    Rng wl(5);
    for (std::size_t i = 0; i < objects; ++i)
      batch.push_back(
          {b.ids[wl.next_u64(b.ids.size())], make_guid(*b.net, 500 + i)});
    b.net->publish_batch(batch, workers);
    const std::uint64_t got = fingerprint_stores(*b.net);
    if (!want.has_value()) want = got;
    EXPECT_EQ(got, *want) << "stores diverged at " << workers << " workers";
  }
}

// ---------------------------------------------------------------------
// Sharded registry: lock-free reads racing a bulk registration
// ---------------------------------------------------------------------

TEST(ShardedRegistry, LockFreeReadsStayCoherentDuringBulkRegistration) {
  Rng rng(33);
  RingMetric space(4096, rng);
  TapestryParams params = small_params();
  Network net(space, params, 77);
  NodeRegistry& reg = net.registry();

  // A settled prefix the readers hammer while the writer lands batches.
  std::vector<Location> first(256);
  for (std::size_t i = 0; i < first.size(); ++i) first[i] = i;
  const std::vector<NodeId> known = net.insert_static_bulk(first, 2);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> read_errors{0};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rr(100 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId& id = known[rr.next_u64(known.size())];
        const TapestryNode* n = reg.find(id);
        if (n == nullptr || !(n->id() == id) || !reg.is_live(id))
          read_errors.fetch_add(1, std::memory_order_relaxed);
        // Random probes may hit or miss, but a hit must never surface a
        // half-published entry: the node handed back carries the probed id.
        const std::uint64_t probe = rr() & 0xFFFFFFFFull;
        const TapestryNode* m = reg.find(Id(params.id, probe));
        if (m != nullptr && m->id().value() != probe)
          read_errors.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: several bulk batches, each internally parallel, forcing many
  // in-place inserts and several grow-and-republish table swaps per shard.
  std::size_t next_loc = first.size();
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<Location> locs(384);
    for (std::size_t i = 0; i < locs.size(); ++i) locs[i] = next_loc + i;
    net.insert_static_bulk(locs, 2);
    next_loc += locs.size();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(reg.live_count(), next_loc);
  // Every id registered across all batches is findable afterwards.
  for (const auto& n : reg.nodes())
    EXPECT_EQ(reg.find(n->id()), n.get());
}

// ---------------------------------------------------------------------
// thread_pool basics backing it all
// ---------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, FirstExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

}  // namespace
}  // namespace tap
