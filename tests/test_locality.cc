// Stub-locality optimization (§6.3): intra-stub queries for locally
// replicated objects never cross the transit network; remote objects pay a
// small bounded intra-stub detour.
#include <gtest/gtest.h>

#include "src/tapestry/locality.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

struct StubWorld {
  std::unique_ptr<TransitStubMetric> space;
  std::unique_ptr<Network> net;
  std::unique_ptr<LocalityManager> locality;
  std::vector<NodeId> ids;
};

StubWorld make_world(std::size_t n, std::uint64_t seed) {
  StubWorld w;
  Rng rng(seed);
  TransitStubParams tsp;
  tsp.transit_scale = 10.0;
  w.space = std::make_unique<TransitStubMetric>(n, rng, tsp);
  w.net = std::make_unique<Network>(*w.space, small_params(), seed ^ 0xfeed);
  w.ids.push_back(w.net->bootstrap(0));
  for (std::size_t i = 1; i < n; ++i) w.ids.push_back(w.net->join(i));
  w.locality = std::make_unique<LocalityManager>(*w.net, *w.space);
  return w;
}

TEST(Locality, RequiresMatchingSpace) {
  Rng rng(1);
  TransitStubMetric ts(32, rng);
  RingMetric ring(32, rng);
  Network net(ring, small_params());
  EXPECT_THROW(LocalityManager(net, ts), CheckError);
}

TEST(Locality, LocalRootIsDeterministicAndLocal) {
  auto w = make_world(128, 2);
  for (int i = 0; i < 20; ++i) {
    const Guid guid = make_guid(*w.net, 50 + i);
    for (std::size_t stub = 0; stub < w.space->num_stubs(); ++stub) {
      const auto members = w.locality->stub_members(stub);
      if (members.empty()) continue;
      const NodeId root = w.locality->local_root(stub, guid);
      EXPECT_EQ(w.locality->stub_of(root), stub);
      EXPECT_EQ(w.locality->local_root(stub, guid), root) << "not stable";
    }
  }
}

TEST(Locality, IntraStubQueryStaysIntraStub) {
  auto w = make_world(192, 3);
  // For each stub: publish an object from a member, query from another
  // member; the query's latency must stay within intra-stub scale.
  int tested = 0;
  for (std::size_t stub = 0; stub < w.space->num_stubs(); ++stub) {
    const auto members = w.locality->stub_members(stub);
    if (members.size() < 2) continue;
    const Guid guid = make_guid(*w.net, 500 + static_cast<int>(stub));
    w.locality->publish(members[0], guid);
    const LocateResult r = w.locality->locate(members[1], guid);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.server, members[0]);
    // Bounded by a few intra-stub trips, far below a transit crossing.
    EXPECT_LE(r.latency, 3.0 * w.space->max_intra_stub_distance());
    ++tested;
  }
  EXPECT_GT(tested, 4);
}

TEST(Locality, PlainTapestryCrossesTransitForComparison) {
  // Without the optimization, a local query may route toward a wide-area
  // root; over many stubs, some query is much more expensive.  (This is
  // the gap E9 quantifies.)
  auto w = make_world(192, 4);
  double worst_plain = 0.0;
  for (std::size_t stub = 0; stub < w.space->num_stubs(); ++stub) {
    const auto members = w.locality->stub_members(stub);
    if (members.size() < 2) continue;
    const Guid guid = make_guid(*w.net, 700 + static_cast<int>(stub));
    w.net->publish(members[0], guid);
    const LocateResult r = w.net->locate(members[1], guid);
    ASSERT_TRUE(r.found);
    worst_plain = std::max(worst_plain, r.latency);
  }
  EXPECT_GT(worst_plain, w.space->max_intra_stub_distance())
      << "expected at least one wide-area detour without the optimization";
}

TEST(Locality, RemoteObjectsStillFound) {
  auto w = make_world(128, 5);
  const auto members0 = w.locality->stub_members(0);
  ASSERT_FALSE(members0.empty());
  // Publish from stub 0, query from a different stub via the local-first
  // path: the local probe misses, the wide-area lookup succeeds.
  const Guid guid = make_guid(*w.net, 31);
  w.locality->publish(members0[0], guid);
  for (std::size_t stub = 1; stub < w.space->num_stubs(); ++stub) {
    const auto members = w.locality->stub_members(stub);
    if (members.empty()) continue;
    const LocateResult r = w.locality->locate(members[0], guid);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.server, members0[0]);
  }
}

TEST(Locality, UnpublishRemovesLocalBranch) {
  auto w = make_world(128, 6);
  const auto members = w.locality->stub_members(2);
  ASSERT_GE(members.size(), 2u);
  const Guid guid = make_guid(*w.net, 32);
  w.locality->publish(members[0], guid);
  w.locality->unpublish(members[0], guid);
  EXPECT_FALSE(w.locality->locate(members[1], guid).found);
  EXPECT_EQ(w.net->total_object_pointers(), 0u);
}

TEST(Locality, MultipleReplicasPreferLocal) {
  auto w = make_world(192, 7);
  // Same GUID replicated in two stubs; clients in each stub must resolve
  // to their local replica.
  std::vector<std::size_t> stubs_with_two;
  for (std::size_t stub = 0; stub < w.space->num_stubs(); ++stub)
    if (w.locality->stub_members(stub).size() >= 2) stubs_with_two.push_back(stub);
  ASSERT_GE(stubs_with_two.size(), 2u);
  const auto a = w.locality->stub_members(stubs_with_two[0]);
  const auto b = w.locality->stub_members(stubs_with_two[1]);
  const Guid guid = make_guid(*w.net, 33);
  w.locality->publish(a[0], guid);
  w.locality->publish(b[0], guid);
  const LocateResult ra = w.locality->locate(a[1], guid);
  const LocateResult rb = w.locality->locate(b[1], guid);
  ASSERT_TRUE(ra.found);
  ASSERT_TRUE(rb.found);
  EXPECT_EQ(ra.server, a[0]);
  EXPECT_EQ(rb.server, b[0]);
}

}  // namespace
}  // namespace tap
