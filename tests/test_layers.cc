// Seam tests for the layered subsystems behind the Network facade:
// Router's pure peek vs the mutating repair walk, and NodeRegistry's
// liveness/index bookkeeping across join, leave and fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "tests/test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;
using test::static_ring_network;

// On a static (fully repaired, all-live) network the non-mutating
// route_step_peek must take exactly the hops the mutating route_step
// takes, for both routing variants, and neither may touch a table.
TEST(RouterSeam, PeekAgreesWithMutatingStepOnStaticNetwork) {
  for (const RoutingMode mode :
       {RoutingMode::kTapestryNative, RoutingMode::kPrrLike}) {
    auto g = static_ring_network(96, 7, small_params(mode));
    Rng rng(99);
    for (int q = 0; q < 64; ++q) {
      const Guid target = make_guid(*g.net, 0x1000 + q);
      const NodeId from = g.ids[rng.next_u64(g.ids.size())];

      RouteState peek_state;
      std::vector<NodeId> peek_path{from};
      NodeId cur = from;
      while (auto next = g.net->route_step_peek(cur, target, peek_state)) {
        peek_path.push_back(*next);
        cur = *next;
      }

      const std::size_t entries_before = g.net->total_table_entries();
      RouteState walk_state;
      std::vector<NodeId> walk_path{from};
      TapestryNode* at = &g.net->node(from);
      for (;;) {
        auto next =
            g.net->router().route_step(*at, target, walk_state, nullptr);
        if (!next.has_value()) break;
        walk_path.push_back(*next);
        at = &g.net->node(*next);
      }

      EXPECT_EQ(peek_path, walk_path) << "mode " << static_cast<int>(mode);
      EXPECT_EQ(g.net->total_table_entries(), entries_before)
          << "route_step mutated tables on an all-live network";
      EXPECT_EQ(g.net->surrogate_root(target), walk_path.back());
    }
  }
}

// The peek must also agree with the repaired walk after failures: run the
// mutating walk first (repairing en route), then check the peek retraces it.
TEST(RouterSeam, PeekMatchesWalkAfterLazyRepair) {
  auto g = grow_ring_network(80, 11);
  Rng rng(5);
  // Fail a handful of nodes, then let a sweep repair the mesh.
  for (int i = 0; i < 8; ++i) {
    const auto ids = g.net->node_ids();
    g.net->fail(ids[rng.next_u64(ids.size())]);
  }
  g.net->heartbeat_sweep();
  for (int q = 0; q < 32; ++q) {
    const Guid target = make_guid(*g.net, 0x9000 + q);
    const NodeId from = g.net->node_ids()[0];
    const RouteResult walked = g.net->route_to_root(from, target);
    RouteState peek_state;
    NodeId cur = from;
    while (auto next = g.net->route_step_peek(cur, target, peek_state))
      cur = *next;
    EXPECT_EQ(cur, walked.root);
  }
}

TEST(RegistrySeam, JoinLeaveFailKeepLivenessAndIndexConsistent) {
  auto g = grow_ring_network(48, 21);
  NodeRegistry& reg = g.net->registry();

  const std::size_t initial = reg.live_count();
  ASSERT_EQ(initial, 48u);
  ASSERT_EQ(g.net->size(), initial);

  // Every registered id must resolve through the index to a node carrying
  // that id, and node_ids() must agree with the alive flags.
  auto check_index = [&]() {
    std::size_t alive = 0;
    for (const auto& n : reg.nodes()) {
      const TapestryNode* found = reg.find(n->id());
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found, n.get()) << "index resolves to the wrong node";
      if (n->alive) ++alive;
    }
    EXPECT_EQ(alive, reg.live_count());
    const auto ids = reg.node_ids();
    EXPECT_EQ(ids.size(), reg.live_count());
    for (const NodeId& id : ids) EXPECT_TRUE(reg.is_live(id));
  };
  check_index();

  // Leave: the node stays indexed as a tombstone but drops out of the live
  // view; live() rejects it, checked() still resolves it.
  const NodeId leaver = g.ids[3];
  g.net->leave(leaver);
  EXPECT_FALSE(reg.is_live(leaver));
  EXPECT_FALSE(g.net->contains(leaver));
  EXPECT_EQ(reg.live_count(), initial - 1);
  EXPECT_NO_THROW((void)reg.checked(leaver));
  EXPECT_THROW((void)reg.live(leaver), CheckError);
  check_index();

  // Fail: same bookkeeping, tombstone keeps its table for lazy repair.
  const NodeId victim = g.ids[7];
  const std::size_t victim_links = g.net->node(victim).table().total_entries();
  g.net->fail(victim);
  EXPECT_FALSE(reg.is_live(victim));
  EXPECT_EQ(reg.live_count(), initial - 2);
  EXPECT_EQ(g.net->node(victim).table().total_entries(), victim_links);
  EXPECT_THROW(g.net->fail(victim), CheckError);  // double-fail rejected
  check_index();

  // Join after churn: fresh node is live, indexed, and unique.
  const NodeId joined = g.net->join(50);
  EXPECT_TRUE(reg.is_live(joined));
  EXPECT_EQ(reg.live_count(), initial - 1);
  EXPECT_THROW(reg.register_node(joined, 51), CheckError);  // duplicate id
  check_index();

  // Dead ids never appear in node_ids().
  const auto ids = reg.node_ids();
  EXPECT_EQ(std::find(ids.begin(), ids.end(), leaver), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), victim), ids.end());
}

TEST(RegistrySeam, FreshNodeIdAvoidsTombstones) {
  auto g = grow_ring_network(16, 31);
  NodeRegistry& reg = g.net->registry();
  g.net->fail(g.ids[1]);
  std::unordered_set<std::uint64_t> taken;
  for (const auto& n : reg.nodes()) taken.insert(n->id().value());
  for (int i = 0; i < 256; ++i)
    EXPECT_EQ(taken.count(reg.fresh_node_id().value()), 0u);
}

// The facade and the subsystems must expose the same objects: mutating via
// a subsystem is visible through the facade (no hidden copies).
TEST(FacadeSeam, SubsystemsShareStateWithFacade) {
  auto g = grow_ring_network(32, 17);
  const Guid guid = make_guid(*g.net, 0xfeed);
  g.net->directory().publish(g.ids[0], guid);
  const auto servers = g.net->servers_of(guid);
  ASSERT_EQ(servers.size(), 1u);
  EXPECT_EQ(servers[0], g.ids[0]);
  const LocateResult r = g.net->locate(g.ids[5], guid);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.server, g.ids[0]);
  g.net->directory().unpublish(g.ids[0], guid);
  EXPECT_TRUE(g.net->servers_of(guid).empty());
}

}  // namespace
}  // namespace tap
