// Thread-parallel leave / fail-stop repair (§5.1, §5.2 on real threads):
// repair waves driven by ThreadedRepairDriver across sim/thread_pool
// workers must converge — for the same seed at ANY worker count — to the
// same surviving membership and the same Property 1 occupancy pattern,
// with backpointer symmetry and no leftover pins at quiescence, and with
// §4.2 rerouting completed INSIDE the wave: objects are locatable the
// moment the call returns, no republish backstop.  The whole binary runs
// under TSan in CI; the prober test is where guarded peeks genuinely race
// the repair threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/assert.h"
#include "src/tapestry/fingerprint.h"
#include "src/tapestry/threaded_repair.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;
using test::static_ring_network;

TapestryParams sharded_params() {
  TapestryParams p = small_params();
  p.store_backend = StoreBackend::kSharded;
  return p;
}

/// Every `stride`-th live node, skipping index 0 (a gateway/server pool
/// survivor).  Registration order is deterministic, so for a fixed seed
/// the victim set is too.
std::vector<NodeId> pick_victims(const std::vector<NodeId>& ids,
                                 std::size_t count, std::size_t stride) {
  std::vector<NodeId> v;
  for (std::size_t i = 1; v.size() < count && i < ids.size(); i += stride)
    v.push_back(ids[i]);
  return v;
}

/// Servers for the pre-wave workload: live nodes NOT in the victim set.
std::vector<NodeId> pick_survivor_servers(const std::vector<NodeId>& ids,
                                          const std::vector<NodeId>& victims,
                                          std::size_t count) {
  std::set<std::uint64_t> doomed;
  for (const NodeId& v : victims) doomed.insert(v.value());
  std::vector<NodeId> servers;
  for (const NodeId& id : ids) {
    if (servers.size() == count) break;
    if (doomed.count(id.value()) == 0) servers.push_back(id);
  }
  return servers;
}

void expect_no_pins(const Network& net) {
  for (const auto& n : net.registry().nodes()) {
    if (!n->alive) continue;
    const RoutingTable& t = n->table();
    for (unsigned l = 0; l < t.levels(); ++l)
      for (unsigned j = 0; j < t.radix(); ++j)
        ASSERT_TRUE(t.at(l, j).pinned_members().empty())
            << "leftover pin at " << n->id().to_string() << " slot (" << l
            << "," << j << ")";
  }
}

std::uint64_t membership_fingerprint(const Network& net) {
  detail::Fnv1a fp;
  std::vector<std::uint64_t> sorted;
  for (const NodeId& id : net.node_ids()) sorted.push_back(id.value());
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint64_t v : sorted) fp.mix(v);
  return fp.value();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted_published(
    const Network& net) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [guid, server] : net.published())
    out.emplace_back(guid.value(), server.value());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ThreadedRepair, LeaveWaveConvergesForEveryWorkerCount) {
  // Same seed, workers 1/2/4/8: identical surviving membership (victims
  // are validated and marked serially), Property 1, symmetric
  // backpointers, no pins — and identical occupancy fingerprints, because
  // the threaded replacement search is complete: at quiescence a slot is
  // occupied iff a live candidate exists, a function of membership alone.
  std::vector<std::uint64_t> member_fp;
  std::vector<std::uint64_t> occupancy_fp;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    auto g = static_ring_network(128, 410, sharded_params());
    const auto ids = g.net->node_ids();
    const auto victims = pick_victims(ids, 24, 5);
    g.net->leave_bulk(victims, workers);
    EXPECT_EQ(g.net->size(), 128u - 24u) << "workers=" << workers;
    for (const NodeId& v : victims) EXPECT_FALSE(g.net->contains(v));

    g.net->check_property1();
    g.net->check_backpointer_symmetry();
    expect_no_pins(*g.net);
    member_fp.push_back(membership_fingerprint(*g.net));
    occupancy_fp.push_back(fingerprint_occupancy(*g.net));
  }
  for (std::size_t i = 1; i < member_fp.size(); ++i) {
    EXPECT_EQ(member_fp[0], member_fp[i])
        << "surviving membership must not depend on the worker count";
    EXPECT_EQ(occupancy_fp[0], occupancy_fp[i])
        << "occupancy pattern must not depend on the worker count";
  }
}

TEST(ThreadedRepair, FailWaveConvergesAndReroutesInsideTheWave) {
  // Workers 1/2/4/8 again, with a workload on the mesh: every object must
  // be locatable the moment fail_and_repair_bulk returns — no
  // republish_all — even though some victims rooted or relayed the
  // publish paths (§4.2 inside the wave plus the chain-repair pass).
  std::vector<std::uint64_t> member_fp;
  std::vector<std::uint64_t> occupancy_fp;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    auto g = static_ring_network(128, 411, sharded_params());
    const auto ids = g.net->node_ids();
    const auto victims = pick_victims(ids, 20, 6);
    const auto servers = pick_survivor_servers(ids, victims, 12);
    std::vector<Guid> guids;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const Guid guid = make_guid(*g.net, 8100 + i);
      guids.push_back(guid);
      g.net->publish(servers[i], guid);
    }

    g.net->fail_and_repair_bulk(victims, workers);
    EXPECT_EQ(g.net->size(), 128u - 20u) << "workers=" << workers;

    g.net->check_property1();
    g.net->check_backpointer_symmetry();
    expect_no_pins(*g.net);
    member_fp.push_back(membership_fingerprint(*g.net));
    occupancy_fp.push_back(fingerprint_occupancy(*g.net));

    const auto survivors = g.net->node_ids();
    Rng ql(77);
    for (const Guid& guid : guids)
      EXPECT_TRUE(
          g.net->locate(survivors[ql.next_u64(survivors.size())], guid).found)
          << "object lost in the wave (workers=" << workers << ")";
  }
  for (std::size_t i = 1; i < member_fp.size(); ++i) {
    EXPECT_EQ(member_fp[0], member_fp[i]);
    EXPECT_EQ(occupancy_fp[0], occupancy_fp[i]);
  }
}

TEST(ThreadedRepair, ThreadedLeaveAgreesWithSerial) {
  // Same seed, same victims, same workload: the serial §5.1 loop and the
  // threaded wave must agree on the surviving membership and on the
  // replica registry (published() set), and every object must remain
  // locatable on both meshes without a republish.
  auto serial = static_ring_network(96, 412, sharded_params());
  auto threaded = static_ring_network(96, 412, sharded_params());
  const auto ids = serial.net->node_ids();
  const auto victims = pick_victims(ids, 16, 5);
  const auto servers = pick_survivor_servers(ids, victims, 10);
  std::vector<Guid> guids;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const Guid guid = make_guid(*serial.net, 8200 + i);
    guids.push_back(guid);
    serial.net->publish(servers[i], guid);
    threaded.net->publish(servers[i], guid);
  }

  for (const NodeId& v : victims) serial.net->leave(v);
  threaded.net->leave_bulk(victims, /*workers=*/4);

  EXPECT_EQ(membership_fingerprint(*serial.net),
            membership_fingerprint(*threaded.net));
  EXPECT_EQ(sorted_published(*serial.net), sorted_published(*threaded.net));
  threaded.net->check_property1();
  threaded.net->check_backpointer_symmetry();
  expect_no_pins(*threaded.net);

  const auto survivors = threaded.net->node_ids();
  for (const Guid& guid : guids) {
    EXPECT_TRUE(serial.net->locate(survivors[1], guid).found);
    EXPECT_TRUE(threaded.net->locate(survivors[1], guid).found);
  }
}

TEST(ThreadedRepair, GuardedPeekProberRacesFailWave) {
  // The TSan acceptance race: a prober thread hammers guarded root walks
  // from surviving sources while fail_and_repair_bulk tears 24 nodes out
  // of the mesh on 4 real threads.  Mid-wave a walk may find a row whose
  // every member is momentarily dead — that surfaces as CheckError, which
  // is a legal transient; crashes and torn reads are not (TSan's job).
  auto g = static_ring_network(160, 413, sharded_params());
  const auto ids = g.net->node_ids();
  const auto victims = pick_victims(ids, 24, 6);
  const auto servers = pick_survivor_servers(ids, victims, 8);
  std::vector<Guid> guids;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const Guid guid = make_guid(*g.net, 8300 + i);
    guids.push_back(guid);
    g.net->publish(servers[i], guid);
  }
  const auto sources = pick_survivor_servers(ids, victims, 32);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> transients{0};
  std::thread prober([&] {
    // gtest assertions are not thread-safe off the main thread: count,
    // assert after joining.
    Rng pr(1234);
    while (!stop.load(std::memory_order_relaxed)) {
      const NodeId src = sources[pr.next_u64(sources.size())];
      const Guid target = make_guid(*g.net, 8300 + pr.next_u64(64));
      try {
        (void)g.net->router().route_to_root_guarded(src, target);
      } catch (const CheckError&) {
        transients.fetch_add(1, std::memory_order_relaxed);
      }
      probes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  g.net->fail_and_repair_bulk(victims, /*workers=*/4);
  stop.store(true, std::memory_order_relaxed);
  prober.join();

  EXPECT_GT(probes.load(), 0u) << "the prober must actually race the wave";
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  expect_no_pins(*g.net);
  // Quiescent now: every object locatable, still without a republish.
  const auto survivors = g.net->node_ids();
  for (const Guid& guid : guids)
    EXPECT_TRUE(g.net->locate(survivors[2], guid).found);
}

TEST(ThreadedRepair, LeaveKeepsObjectsLocatableOnGrownCore) {
  // Organic tables (dynamic-join core), victims chosen so some of them
  // root the published objects: in-wave rerouting must hand the pointers
  // to the new surrogate roots before leave_bulk returns.
  auto g = test::grow_ring_network(64, 414, sharded_params());
  const auto ids = g.net->node_ids();
  const auto victims = pick_victims(ids, 12, 4);
  const auto servers = pick_survivor_servers(ids, victims, 8);
  std::vector<Guid> guids;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const Guid guid = make_guid(*g.net, 8400 + i);
    guids.push_back(guid);
    g.net->publish(servers[i], guid);
  }

  g.net->leave_bulk(victims, /*workers=*/4);

  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  const auto survivors = g.net->node_ids();
  Rng ql(55);
  for (const Guid& guid : guids)
    EXPECT_TRUE(
        g.net->locate(survivors[ql.next_u64(survivors.size())], guid).found)
        << "no republish happened; the wave itself must keep Property 4 "
           "locatability";
}

TEST(ThreadedRepair, HeartbeatSweepBulkRepairsUnannouncedFailures) {
  // Plain fail() marks corpses without repair; the threaded sweep must
  // then restore Property 1 and symmetry at any worker count, matching
  // the serial sweep's invariants.
  for (const std::size_t workers : {1u, 4u}) {
    auto g = static_ring_network(96, 415, sharded_params());
    const auto ids = g.net->node_ids();
    const auto victims = pick_victims(ids, 12, 7);
    for (const NodeId& v : victims) g.net->fail(v);

    g.net->heartbeat_sweep_bulk(workers);

    g.net->check_property1();
    g.net->check_backpointer_symmetry();
    expect_no_pins(*g.net);
  }
}

}  // namespace
}  // namespace tap
