// Metric substrate: every space must be a true metric (symmetry + triangle
// inequality), and the growth-restricted spaces must exhibit the expansion
// behaviour the paper's analysis assumes (Equation 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/assert.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/metric/analysis.h"
#include "src/metric/euclidean.h"
#include "src/metric/general.h"
#include "src/metric/ring.h"
#include "src/metric/torus.h"
#include "src/metric/transit_stub.h"

namespace tap {
namespace {

std::unique_ptr<MetricSpace> make_space(const std::string& kind, std::size_t n,
                                        Rng& rng) {
  if (kind == "ring") return std::make_unique<RingMetric>(n, rng);
  if (kind == "torus") return std::make_unique<Torus2D>(n, rng);
  if (kind == "euclid") return std::make_unique<Euclidean2D>(n, rng);
  if (kind == "transit") return std::make_unique<TransitStubMetric>(n, rng);
  if (kind == "highdim") return std::make_unique<HighDimEuclidean>(n, 6, rng);
  if (kind == "clusters") return std::make_unique<TwoClusterMetric>(n, rng);
  ADD_FAILURE() << "unknown space " << kind;
  return nullptr;
}

class MetricPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MetricPropertyTest, TriangleInequalityHolds) {
  Rng rng(11);
  auto space = make_space(GetParam(), 200, rng);
  const TriangleAudit audit = audit_triangle_inequality(*space, rng, 20000);
  EXPECT_EQ(audit.violations, 0u)
      << GetParam() << " worst excess " << audit.worst_excess;
}

TEST_P(MetricPropertyTest, SymmetryAndIdentity) {
  Rng rng(12);
  auto space = make_space(GetParam(), 100, rng);
  for (int t = 0; t < 2000; ++t) {
    const Location a = rng.next_u64(space->size());
    const Location b = rng.next_u64(space->size());
    EXPECT_DOUBLE_EQ(space->distance(a, b), space->distance(b, a));
    EXPECT_GE(space->distance(a, b), 0.0);
  }
  for (Location a = 0; a < space->size(); ++a)
    EXPECT_DOUBLE_EQ(space->distance(a, a), 0.0);
}

TEST_P(MetricPropertyTest, SizeMatchesRequest) {
  Rng rng(13);
  auto space = make_space(GetParam(), 150, rng);
  EXPECT_EQ(space->size(), 150u);
}

INSTANTIATE_TEST_SUITE_P(AllSpaces, MetricPropertyTest,
                         ::testing::Values("ring", "torus", "euclid",
                                           "transit", "highdim", "clusters"),
                         [](const auto& ti) { return ti.param; });

TEST(RingMetric, DistanceWrapsAround) {
  Rng rng(1);
  RingMetric ring(4, rng, 0.0);  // even placement: 0, .25, .5, .75
  EXPECT_NEAR(ring.distance(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(ring.distance(0, 3), 0.25, 1e-12);  // wraps, not 0.75
  EXPECT_NEAR(ring.distance(0, 2), 0.50, 1e-12);
}

TEST(RingMetric, ExpansionConstantNearTwo) {
  Rng rng(2);
  RingMetric ring(1024, rng);
  const auto est = estimate_expansion(ring, rng, 32);
  // A 1-D space doubles ball population when radius doubles.
  EXPECT_GT(est.median_ratio, 1.5);
  EXPECT_LT(est.median_ratio, 2.5);
}

TEST(Torus2D, ExpansionConstantNearFour) {
  Rng rng(3);
  Torus2D torus(2048, rng);
  const auto est = estimate_expansion(torus, rng, 32);
  // A 2-D space quadruples ball population when radius doubles.
  EXPECT_GT(est.median_ratio, 3.0);
  EXPECT_LT(est.median_ratio, 5.0);
}

TEST(HighDim, ExpansionExceedsHexRadixBound) {
  Rng rng(4);
  HighDimEuclidean space(2048, 6, rng);
  const auto est = estimate_expansion(space, rng, 32);
  // The b > c^2 precondition (b = 16 => c < 4) fails decisively here,
  // which is why §7 needs a different scheme.
  EXPECT_GT(est.p90_ratio, 4.0);
}

TEST(Torus2D, WrapAroundShortensDistance) {
  // Points at opposite edges are close on the torus.
  Rng rng(5);
  Torus2D torus(2, rng);
  // Can't control sampled points; instead check the distance bound that the
  // wraparound guarantees: no two points are farther than sqrt(0.5).
  Rng rng2(6);
  Torus2D big(500, rng2);
  double max_d = 0;
  for (Location a = 0; a < big.size(); ++a)
    for (Location b = a + 1; b < big.size(); ++b)
      max_d = std::max(max_d, big.distance(a, b));
  EXPECT_LE(max_d, std::sqrt(0.5) + 1e-12);
}

TEST(TransitStub, IntraStubDistancesAreSmall) {
  Rng rng(7);
  TransitStubMetric ts(256, rng);
  for (Location a = 0; a < ts.size(); ++a) {
    for (Location b = a + 1; b < ts.size(); ++b) {
      if (ts.same_stub(a, b)) {
        EXPECT_LE(ts.distance(a, b), ts.max_intra_stub_distance());
      }
    }
  }
}

TEST(TransitStub, InterTransitDominatesIntraStub) {
  Rng rng(8);
  TransitStubParams params;
  params.transit_scale = 10.0;
  TransitStubMetric ts(256, rng, params);
  Summary intra, inter;
  for (Location a = 0; a < ts.size(); ++a) {
    for (Location b = a + 1; b < ts.size(); ++b) {
      if (ts.same_stub(a, b))
        intra.add(ts.distance(a, b));
      else if (ts.transit_of(a) != ts.transit_of(b))
        inter.add(ts.distance(a, b));
    }
  }
  ASSERT_FALSE(intra.empty());
  ASSERT_FALSE(inter.empty());
  EXPECT_GT(inter.mean(), 5.0 * intra.mean());
}

TEST(TransitStub, StubAssignmentIsBalanced) {
  Rng rng(9);
  TransitStubParams params;
  params.transit_routers = 4;
  params.stubs_per_transit = 4;
  TransitStubMetric ts(320, rng, params);
  std::vector<int> counts(ts.num_stubs(), 0);
  for (Location a = 0; a < ts.size(); ++a) ++counts[ts.stub_of(a)];
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(TransitStub, ParameterValidation) {
  Rng rng(10);
  TransitStubParams bad;
  bad.transit_scale = 0.5;
  EXPECT_THROW(TransitStubMetric(64, rng, bad), CheckError);
}

TEST(TwoCluster, BallGrowthIsAbrupt) {
  Rng rng(14);
  TwoClusterMetric space(512, rng);
  // From a point in cluster one, a ball of radius 0.1 holds ~half the
  // points; radius 1.1 holds everything — the expansion ratio explodes.
  std::size_t small_ball = 0, big_ball = 0;
  for (Location b = 1; b < space.size(); ++b) {
    const double d = space.distance(0, b);
    if (d <= 0.1) ++small_ball;
    if (d <= 1.2) ++big_ball;
  }
  EXPECT_GE(small_ball, space.size() / 2 - 2);
  EXPECT_EQ(big_ball, space.size() - 1);
}

TEST(Analysis, NearestSortedMatchesBruteForce) {
  Rng rng(15);
  Euclidean2D space(64, rng);
  const auto order = nearest_sorted(space, 10);
  ASSERT_EQ(order.size(), 63u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(space.distance(10, order[i - 1]),
              space.distance(10, order[i]) + 1e-15);
}

TEST(Analysis, MedoidMinimizesDistanceSum) {
  Rng rng(16);
  Euclidean2D space(40, rng);
  const Location m = medoid(space);
  auto total = [&](Location c) {
    double s = 0;
    for (Location i = 0; i < space.size(); ++i) s += space.distance(c, i);
    return s;
  };
  const double best = total(m);
  for (Location c = 0; c < space.size(); ++c) EXPECT_LE(best, total(c) + 1e-12);
}

TEST(Analysis, DiameterIsMaxPairwise) {
  Rng rng(17);
  RingMetric ring(32, rng, 0.0);
  EXPECT_NEAR(diameter(ring), 0.5, 1e-12);
}

}  // namespace
}  // namespace tap
