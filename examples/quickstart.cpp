// Quickstart: stand up a Tapestry overlay, publish an object, locate it.
//
// Walks the three core moves of the public API:
//   1. build a metric space (the simulated underlay) and a Network;
//   2. bootstrap one node, then grow the overlay with dynamic joins —
//      every join runs the full insertion protocol of the paper (§3-§4);
//   3. publish replicas and locate them from anywhere, observing the
//      hop/latency accounting and the nearest-replica behaviour.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/common/rng.h"
#include "src/metric/ring.h"
#include "src/tapestry/network.h"

int main() {
  using namespace tap;

  // --- 1. Underlay + overlay -------------------------------------------
  Rng rng(2026);
  RingMetric space(/*n=*/64, rng);  // 64 locations on a unit-circumference ring

  TapestryParams params;
  params.id = IdSpec{4, 8};  // hex digits, 8 of them (32-bit namespace)
  params.redundancy = 3;     // R: primary + two backup links per table slot
  Network net(space, params, /*seed=*/2026);

  // --- 2. Membership ----------------------------------------------------
  const NodeId first = net.bootstrap(/*loc=*/0);
  std::printf("bootstrapped %s\n", first.to_string().c_str());
  for (Location loc = 1; loc < 48; ++loc) {
    Trace t;
    const NodeId id = net.join(loc, std::nullopt, &t);
    if (loc % 12 == 0)
      std::printf("join %-2zu: node %s cost %zu messages, %.3f latency\n",
                  loc, id.to_string().c_str(), t.messages(), t.latency());
  }
  std::printf("overlay size: %zu nodes\n", net.size());

  // The paper's invariants hold after every join; check them explicitly.
  net.check_property1();
  std::printf("Property 1 (consistency): OK\n");
  std::printf("Property 2 (locality) quality: %.1f%%\n",
              net.property2_quality() * 100.0);

  // --- 3. Objects -------------------------------------------------------
  const auto ids = net.node_ids();
  const Guid report(params.id, 0xCAFEF00Dull);

  // Publish two replicas of the same GUID from different servers; Tapestry
  // keeps pointers to all replicas (§2.4).
  net.publish(ids[5], report);
  net.publish(ids[40], report);
  std::printf("\npublished GUID %s at %s and %s\n",
              report.to_string().c_str(), ids[5].to_string().c_str(),
              ids[40].to_string().c_str());
  net.check_property4();
  std::printf("Property 4 (pointers on every publish path): OK\n");

  // Locate from a few clients: each finds the replica nearest to where the
  // query met a pointer, typically the closer one.
  for (const std::size_t c : {1ul, 20ul, 42ul}) {
    Trace t;
    const LocateResult r = net.locate(ids[c], report, &t);
    std::printf("locate from %s: %s via %s (%zu hops, latency %.4f)\n",
                ids[c].to_string().c_str(),
                r.found ? r.server.to_string().c_str() : "NOT FOUND",
                r.pointer_node.to_string().c_str(), r.hops, r.latency);
  }

  // --- 4. Dynamics ------------------------------------------------------
  // A voluntary departure keeps the object available (§5.1).
  const NodeId root = net.surrogate_root(report);
  std::printf("\nroot of the GUID is %s; asking it to leave...\n",
              root.to_string().c_str());
  if (root == ids[5] || root == ids[40]) {
    std::printf("(root is a replica server; skipping the departure demo)\n");
  } else {
    net.leave(root);
    const LocateResult r = net.locate(ids[1], report);
    std::printf("after departure: %s (new root %s)\n",
                r.found ? "still found" : "LOST",
                net.surrogate_root(report).to_string().c_str());
  }
  return 0;
}
