// Wide-area deployment over a transit-stub topology (paper §6.2-§6.3).
//
// Models an enterprise/ISP world: 16 stub networks hanging off 4 transit
// routers, with wide-area links ~10x longer than local ones.  Shows the
// §6.3 stub-locality optimization end to end: a file published inside a
// stub is found by stub-mates without a single wide-area packet, while
// clients elsewhere still locate it through the global mesh.
//
// Build & run:  ./build/examples/stub_locality
#include <cstdio>

#include "src/common/rng.h"
#include "src/metric/transit_stub.h"
#include "src/tapestry/locality.h"
#include "src/tapestry/network.h"

int main() {
  using namespace tap;

  Rng rng(404);
  TransitStubParams tsp;
  tsp.transit_routers = 4;
  tsp.stubs_per_transit = 4;
  tsp.transit_scale = 10.0;
  TransitStubMetric space(256, rng, tsp);

  TapestryParams params;
  params.id = IdSpec{4, 8};
  Network net(space, params, 404);
  net.bootstrap(0);
  for (Location loc = 1; loc < 256; ++loc) net.join(loc);
  LocalityManager locality(net, space);

  std::printf("topology: %zu stubs, intra-stub distances <= %.3f, "
              "wide-area links ~%.0fx longer\n",
              space.num_stubs(), space.max_intra_stub_distance(),
              space.params().transit_scale);

  // An engineering team in stub 3 shares a build artifact.
  const auto team = locality.stub_members(3);
  std::printf("\nstub 3 has %zu members; %s publishes the artifact\n",
              team.size(), team[0].to_string().c_str());
  const Guid artifact(params.id, 0xB01DFACEull);
  locality.publish(team[0], artifact);

  std::printf("\nteam-mate lookups (same stub):\n");
  for (std::size_t m = 1; m < std::min<std::size_t>(team.size(), 4); ++m) {
    const LocateResult r = locality.locate(team[m], artifact);
    std::printf("  %s -> found=%d latency %.4f (%s)\n",
                team[m].to_string().c_str(), int(r.found), r.latency,
                r.latency <= space.max_intra_stub_distance()
                    ? "stayed inside the stub"
                    : "LEFT THE STUB");
  }

  std::printf("\nthe same lookups WITHOUT the optimization:\n");
  const Guid plain(params.id, 0xB01DFACFull);
  net.publish(team[0], plain);
  for (std::size_t m = 1; m < std::min<std::size_t>(team.size(), 4); ++m) {
    const LocateResult r = net.locate(team[m], plain);
    std::printf("  %s -> found=%d latency %.4f (%s)\n",
                team[m].to_string().c_str(), int(r.found), r.latency,
                r.latency <= space.max_intra_stub_distance()
                    ? "stayed inside the stub"
                    : "left the stub — paid wide-area latency");
  }

  // A collaborator in a different stub still finds the artifact globally.
  const auto remote_team = locality.stub_members(11);
  if (!remote_team.empty()) {
    const LocateResult r = locality.locate(remote_team[0], artifact);
    std::printf("\nremote lookup from stub 11 (%s): found=%d latency %.3f\n",
                remote_team[0].to_string().c_str(), int(r.found), r.latency);
  }

  // Replicate into the remote stub: its members now resolve locally too.
  if (remote_team.size() >= 2) {
    locality.publish(remote_team[0], artifact);
    const LocateResult r = locality.locate(remote_team[1], artifact);
    std::printf("after replicating into stub 11: member lookup latency %.4f "
                "(%s)\n",
                r.latency,
                r.latency <= space.max_intra_stub_distance()
                    ? "local again"
                    : "still wide-area");
  }
  return 0;
}
