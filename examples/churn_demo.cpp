// Dynamic membership under fire — the paper's headline property: "objects
// remain available, even as the network changes."
//
// Simulates a day in the life of a deployed overlay: nodes join through
// the full insertion protocol, leave gracefully, and crash without
// warning, while a population of objects is continuously queried.  Soft-
// state maintenance (heartbeat sweep + republish, §6.5) runs on a timer on
// the embedded event queue.  The demo prints an availability timeline and
// the per-phase maintenance cost.
//
// Build & run:  ./build/examples/churn_demo
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/ring.h"
#include "src/tapestry/network.h"

int main() {
  using namespace tap;

  Rng rng(31);
  RingMetric space(512, rng);
  TapestryParams params;
  params.id = IdSpec{4, 8};
  params.pointer_ttl = 8.0;  // soft state: pointers die if not refreshed
  Network net(space, params, 31);

  net.bootstrap(0);
  for (Location loc = 1; loc < 192; ++loc) net.join(loc);
  std::vector<Location> free_locs;
  for (Location loc = 192; loc < 512; ++loc) free_locs.push_back(loc);

  // 64 objects at random servers.
  struct Obj {
    Guid guid;
    NodeId server;
    bool alive = true;
  };
  std::vector<Obj> objects;
  Rng wl(32);
  {
    const auto ids = net.node_ids();
    for (int i = 0; i < 64; ++i) {
      Obj o{Guid(params.id, 0x1000000ull + static_cast<unsigned>(i) * 77),
            ids[wl.next_u64(ids.size())], true};
      net.publish(o.server, o.guid);
      objects.push_back(o);
    }
  }

  std::printf("phase | size | joins | leaves | fails | lookups ok | maint msgs\n");
  std::printf("------+------+-------+--------+-------+------------+-----------\n");

  for (int phase = 0; phase < 8; ++phase) {
    int joins = 0, leaves = 0, fails = 0, ok = 0, total = 0;
    // One phase = 4 time units of churn + lookups, then maintenance.
    const double phase_end = net.now() + 4.0;
    while (net.now() < phase_end) {
      net.events().run_until(net.now() + 0.25);
      const double dice = rng.next_double();
      const auto ids = net.node_ids();
      if (dice < 0.3 && !free_locs.empty()) {
        net.join(free_locs.back());
        free_locs.pop_back();
        ++joins;
      } else if (dice < 0.5 && net.size() > 96) {
        // Voluntary goodbye from a non-server node.
        NodeId victim = ids[rng.next_u64(ids.size())];
        bool is_server = false;
        for (const Obj& o : objects)
          if (o.alive && o.server == victim) is_server = true;
        if (!is_server) {
          free_locs.push_back(net.node(victim).location());
          net.leave(victim);
          ++leaves;
        }
      } else if (dice < 0.6 && net.size() > 96) {
        // Crash — possibly of a server (its replicas die with it).
        NodeId victim = ids[rng.next_u64(ids.size())];
        net.fail(victim);
        for (Obj& o : objects)
          if (o.server == victim) o.alive = false;
        ++fails;
      }
      // A burst of lookups against objects that still have live replicas.
      for (int q = 0; q < 8; ++q) {
        const Obj& o = objects[wl.next_u64(objects.size())];
        if (!o.alive) continue;
        const auto clients = net.node_ids();
        ++total;
        if (net.locate(clients[wl.next_u64(clients.size())], o.guid).found)
          ++ok;
      }
    }
    // Maintenance boundary: heartbeats discover the corpses, expired
    // pointers are purged, live replicas republished.
    Trace maint;
    net.heartbeat_sweep(&maint);
    net.expire_pointers();
    net.republish_all(&maint);
    std::printf("%5d | %4zu | %5d | %6d | %5d | %6d/%3d | %10zu\n", phase,
                net.size(), joins, leaves, fails, ok, total,
                maint.messages());
  }

  // The strong claims, verified at the end of the run.
  net.check_property1();
  net.check_property4();
  std::printf("\nfinal invariants: Property 1 OK, Property 4 OK, "
              "Property 2 quality %.1f%%\n",
              net.property2_quality() * 100.0);
  int live_objects = 0, found = 0;
  const auto ids = net.node_ids();
  for (const auto& o : objects) {
    if (!o.alive) continue;
    ++live_objects;
    if (net.locate(ids[0], o.guid).found) ++found;
  }
  std::printf("objects with live replicas still locatable: %d/%d\n", found,
              live_objects);
  return 0;
}
