// Dynamic membership under fire — the paper's headline property: "objects
// remain available, even as the network changes."
//
// Simulates a day in the life of a deployed overlay on the event-driven
// churn engine: nodes join through the full insertion protocol, leave
// gracefully, and crash without warning, while a population of objects is
// continuously queried.  Publishes and lookups decompose into one event
// per routing hop, and soft-state maintenance (republish + expiry +
// heartbeat sweep, §6.5) runs on recurring timers, so queries observe
// repairs genuinely in flight.  The demo prints the driver's availability
// timeline and the per-epoch maintenance cost, then audits the overlay's
// invariants.
//
// Build & run:  ./build/examples/churn_demo
#include <cstdio>

#include "src/common/rng.h"
#include "src/metric/ring.h"
#include "src/sim/churn_driver.h"
#include "src/tapestry/network.h"

int main() {
  using namespace tap;

  Rng rng(31);
  RingMetric space(512, rng);
  TapestryParams params;
  params.id = IdSpec{4, 8};
  params.pointer_ttl = 8.0;  // soft state: pointers die if not refreshed
  Network net(space, params, 31);

  net.bootstrap(0);
  for (Location loc = 1; loc < 192; ++loc) net.join(loc);

  ChurnScenario sc;
  sc.horizon = 32.0;  // 8 epochs of 4 time units, as the old phase loop
  sc.epoch = 4.0;
  sc.join_rate = 1.2;  // the old per-0.25-step dice, expressed as rates
  sc.leave_rate = 0.8;
  sc.fail_rate = 0.4;
  sc.min_nodes = 96;
  sc.query_rate = 32.0;
  sc.post_failure_window = 4.0;
  sc.objects = 64;
  sc.replicas = 1;
  sc.republish_interval = 4.0;
  sc.expiry_interval = 4.0;
  sc.heartbeat_interval = 4.0;
  sc.seed = 32;

  ChurnDriver driver(net, sc);
  const ChurnReport rep = driver.run();

  std::printf("epoch | size | joins | leaves | fails | lookups ok | maint msgs\n");
  std::printf("------+------+-------+--------+-------+------------+-----------\n");
  for (std::size_t i = 0; i < rep.epochs.size(); ++i) {
    const ChurnEpoch& e = rep.epochs[i];
    std::printf("%5zu | %4zu | %5zu | %6zu | %5zu | %6zu/%-3zu | %10zu\n", i,
                e.live_nodes, e.joins, e.leaves, e.fails, e.found, e.queries,
                e.maintenance_msgs);
  }
  std::printf("availability %.2f%% over %zu lookups (%zu on dead objects "
              "skipped), %llu events fired\n",
              rep.availability() * 100.0, rep.queries, rep.queries_skipped,
              static_cast<unsigned long long>(rep.events_fired));

  // The strong claims, verified after one final maintenance boundary.
  net.heartbeat_sweep();
  net.expire_pointers();
  net.republish_all();
  net.check_property1();
  net.check_property4();
  std::printf("\nfinal invariants: Property 1 OK, Property 4 OK, "
              "Property 2 quality %.1f%%\n",
              net.property2_quality() * 100.0);

  int live_objects = 0, found = 0;
  const auto ids = net.node_ids();
  for (const Guid& guid : driver.objects()) {
    if (net.servers_of(guid).empty()) continue;  // all replicas crashed
    ++live_objects;
    if (net.locate(ids[0], guid).found) ++found;
  }
  std::printf("objects with live replicas still locatable: %d/%d\n", found,
              live_objects);
  return 0;
}
