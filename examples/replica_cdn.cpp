// Replica placement for a content network — the workload the paper's
// introduction motivates: "data and services are mobile and replicated
// widely for availability, durability, and locality."
//
// A popular object starts with a single origin server.  Clients everywhere
// query it and pay origin-distance latency.  The application then places
// replicas near its hottest client clusters (Tapestry lets applications
// "choose their own data placement policies", §6.1); because every query
// diverts to the first pointer it meets and picks the closest replica,
// latency collapses *without any client configuration* — the overlay finds
// the nearby copy by itself.
//
// Build & run:  ./build/examples/replica_cdn
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/metric/torus.h"
#include "src/tapestry/network.h"

namespace {

tap::Summary measure_latency(tap::Network& net, const tap::Guid& object,
                             const std::vector<tap::NodeId>& clients) {
  tap::Summary s;
  for (const tap::NodeId& c : clients) {
    const tap::LocateResult r = net.locate(c, object);
    if (r.found) s.add(r.latency);
  }
  return s;
}

}  // namespace

int main() {
  using namespace tap;

  Rng rng(777);
  Torus2D space(400, rng);

  TapestryParams params;
  params.id = IdSpec{4, 8};
  Network net(space, params, 777);
  net.bootstrap(0);
  for (Location loc = 1; loc < 400; ++loc) net.join(loc);

  const auto ids = net.node_ids();
  const Guid video(params.id, 0x1EADBEEFull);
  const NodeId origin = ids[0];
  net.publish(origin, video);
  std::printf("origin server: %s\n", origin.to_string().c_str());

  // The client population: every other node queries the object.
  std::vector<NodeId> clients;
  for (std::size_t i = 1; i < ids.size(); i += 2) clients.push_back(ids[i]);

  Summary before = measure_latency(net, video, clients);
  std::printf("\nwith 1 replica : mean latency %.4f  p95 %.4f\n",
              before.mean(), before.percentile(95));

  // Place replicas at progressively more nodes — here simply spread across
  // the torus; a real deployment would use its request logs.
  const std::vector<std::size_t> replica_picks{67, 133, 200, 267, 333};
  std::size_t placed = 1;
  for (const std::size_t pick : replica_picks) {
    net.publish(ids[pick], video);
    ++placed;
    const Summary s = measure_latency(net, video, clients);
    std::printf("with %zu replicas: mean latency %.4f  p95 %.4f  (replica at %s)\n",
                placed, s.mean(), s.percentile(95),
                ids[pick].to_string().c_str());
  }

  // Show which replica a few clients actually resolve to — always a nearby
  // one, although no client was told where the replicas are.
  std::printf("\nresolution samples:\n");
  for (const std::size_t i : {3ul, 101ul, 251ul}) {
    const LocateResult r = net.locate(ids[i], video);
    std::printf("  client %s -> replica %s (direct distance %.4f, latency %.4f)\n",
                ids[i].to_string().c_str(), r.server.to_string().c_str(),
                net.distance(ids[i], r.server), r.latency);
  }

  // Tear down a replica: unpublish removes its pointers; queries fail over
  // to the remaining copies.
  net.unpublish(ids[replica_picks[0]], video);
  const Summary after = measure_latency(net, video, clients);
  std::printf("\nafter unpublishing one replica: mean latency %.4f "
              "(every query still succeeds: %zu/%zu)\n",
              after.mean(), after.count(), clients.size());
  return 0;
}
