// tapestry_sim — scenario driver for the Tapestry simulator.
//
// Runs a configurable end-to-end scenario (build a network over a chosen
// metric space, publish a workload, churn it, query it) and prints summary
// statistics, optionally as CSV for plotting.  Everything the experiment
// binaries measure is reachable from here with flags, so new parameter
// studies don't require writing C++.
//
// Examples:
//   tapestry_sim --space=ring --nodes=256 --objects=128 --queries=2000
//   tapestry_sim --space=transit-stub --nodes=512 --routing=prr --r=2
//   tapestry_sim --nodes=256 --churn-rounds=50 --fail-prob=0.2 --csv
//
// Flags (defaults in brackets):
//   --space=ring|torus|transit-stub|euclid6d|two-cluster   [ring]
//   --nodes=N        overlay size                           [256]
//   --objects=N      published objects                      [nodes/2]
//   --queries=N      lookup count                           [4*nodes]
//   --replicas=N     replicas per object                    [1]
//   --routing=native|prr                                    [native]
//   --r=N            redundancy (links per slot)            [3]
//   --roots=N        root multiplicity                      [1]
//   --retry          retry all roots on a miss (Obs. 1)     [off]
//   --secondary      PRR secondary publish/search (§2.4)    [off]
//   --static         build tables with the PRR oracle       [off: dynamic joins]
//   --churn-rounds=N rounds of join/leave/fail between queries [0]
//   --fail-prob=P    fraction of churn events that are crashes [0.25]
//   --seed=N                                                 [1]
//   --csv            emit a single CSV row instead of the report
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/metric/general.h"
#include "src/metric/ring.h"
#include "src/metric/torus.h"
#include "src/metric/transit_stub.h"
#include "src/tapestry/network.h"

namespace {

using namespace tap;

struct Options {
  std::string space = "ring";
  std::size_t nodes = 256;
  std::size_t objects = 0;  // 0 => nodes/2
  std::size_t queries = 0;  // 0 => 4*nodes
  unsigned replicas = 1;
  std::string routing = "native";
  unsigned redundancy = 3;
  unsigned roots = 1;
  bool retry = false;
  bool secondary = false;
  bool use_static = false;
  int churn_rounds = 0;
  double fail_prob = 0.25;
  std::uint64_t seed = 1;
  bool csv = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--space", &v)) o.space = v;
    else if (parse_flag(argv[i], "--nodes", &v)) o.nodes = std::stoul(v);
    else if (parse_flag(argv[i], "--objects", &v)) o.objects = std::stoul(v);
    else if (parse_flag(argv[i], "--queries", &v)) o.queries = std::stoul(v);
    else if (parse_flag(argv[i], "--replicas", &v))
      o.replicas = static_cast<unsigned>(std::stoul(v));
    else if (parse_flag(argv[i], "--routing", &v)) o.routing = v;
    else if (parse_flag(argv[i], "--r", &v))
      o.redundancy = static_cast<unsigned>(std::stoul(v));
    else if (parse_flag(argv[i], "--roots", &v))
      o.roots = static_cast<unsigned>(std::stoul(v));
    else if (parse_flag(argv[i], "--churn-rounds", &v))
      o.churn_rounds = std::stoi(v);
    else if (parse_flag(argv[i], "--fail-prob", &v)) o.fail_prob = std::stod(v);
    else if (parse_flag(argv[i], "--seed", &v)) o.seed = std::stoull(v);
    else if (std::strcmp(argv[i], "--retry") == 0) o.retry = true;
    else if (std::strcmp(argv[i], "--secondary") == 0) o.secondary = true;
    else if (std::strcmp(argv[i], "--static") == 0) o.use_static = true;
    else if (std::strcmp(argv[i], "--csv") == 0) o.csv = true;
    else {
      std::fprintf(stderr, "unknown flag: %s (see file header for usage)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  if (o.objects == 0) o.objects = o.nodes / 2;
  if (o.queries == 0) o.queries = 4 * o.nodes;
  return o;
}

std::unique_ptr<MetricSpace> make_space(const Options& o, Rng& rng) {
  const std::size_t capacity = 2 * o.nodes + 16;  // headroom for churn joins
  if (o.space == "ring") return std::make_unique<RingMetric>(capacity, rng);
  if (o.space == "torus") return std::make_unique<Torus2D>(capacity, rng);
  if (o.space == "transit-stub")
    return std::make_unique<TransitStubMetric>(capacity, rng);
  if (o.space == "euclid6d")
    return std::make_unique<HighDimEuclidean>(capacity, 6, rng);
  if (o.space == "two-cluster")
    return std::make_unique<TwoClusterMetric>(capacity, rng);
  std::fprintf(stderr, "unknown space: %s\n", o.space.c_str());
  std::exit(2);
}

Guid make_guid(const Network& net, std::uint64_t raw) {
  const IdSpec spec = net.params().id;
  const std::uint64_t mask = spec.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec.total_bits()) - 1;
  return Guid(spec, splitmix64(raw ^ 0x51a) & mask);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  Rng rng(o.seed);
  auto space = make_space(o, rng);

  TapestryParams params;
  params.id = IdSpec{4, 8};
  params.redundancy = o.redundancy;
  params.root_multiplicity = o.roots;
  params.retry_all_roots = o.retry;
  params.prr_secondary_search = o.secondary;
  params.routing = o.routing == "prr" ? RoutingMode::kPrrLike
                                      : RoutingMode::kTapestryNative;

  Network net(*space, params, o.seed);
  Trace build_trace;
  if (o.use_static) {
    for (Location i = 0; i < o.nodes; ++i) net.insert_static(i);
    net.rebuild_static_tables();
  } else {
    net.bootstrap(0);
    for (Location i = 1; i < o.nodes; ++i)
      net.join(i, std::nullopt, &build_trace);
  }

  // Workload.
  Rng wl(o.seed ^ 0x4c0ad);
  struct Obj {
    Guid guid;
    std::vector<NodeId> servers;
  };
  std::vector<Obj> objects;
  Trace publish_trace;
  for (std::size_t i = 0; i < o.objects; ++i) {
    Obj obj{make_guid(net, i), {}};
    const auto ids = net.node_ids();
    for (unsigned r = 0; r < o.replicas; ++r) {
      const NodeId server = ids[wl.next_u64(ids.size())];
      net.publish(server, obj.guid, &publish_trace);
      obj.servers.push_back(server);
    }
    objects.push_back(std::move(obj));
  }

  // Optional churn between publication and measurement.
  std::size_t joins = 0, leaves = 0, fails = 0;
  Location next_loc = o.nodes;
  for (int round = 0; round < o.churn_rounds; ++round) {
    const double dice = wl.next_double();
    const auto ids = net.node_ids();
    if (dice < 0.4 && next_loc < space->size()) {
      net.join(next_loc++);
      ++joins;
    } else if (net.size() > o.nodes / 2) {
      const NodeId victim = ids[wl.next_u64(ids.size())];
      bool is_server = false;
      for (const auto& obj : objects)
        for (const NodeId& s : obj.servers)
          if (s == victim) is_server = true;
      if (is_server) continue;
      if (wl.next_double() < o.fail_prob) {
        net.fail(victim);
        ++fails;
      } else {
        net.leave(victim);
        ++leaves;
      }
    }
  }
  if (fails > 0) {
    net.heartbeat_sweep();
    net.republish_all();
  }

  // Measurement.
  Summary stretch, hops, latency;
  std::size_t found = 0;
  Trace query_trace;
  for (std::size_t q = 0; q < o.queries; ++q) {
    const Obj& obj = objects[wl.next_u64(objects.size())];
    const auto ids = net.node_ids();
    const NodeId client = ids[wl.next_u64(ids.size())];
    const LocateResult r = net.locate(client, obj.guid, &query_trace);
    if (!r.found) continue;
    ++found;
    hops.add(double(r.hops));
    latency.add(r.latency);
    const double direct = net.distance_to_nearest_replica(client, obj.guid);
    if (direct > 1e-9 && direct < 1e18) stretch.add(r.latency / direct);
  }
  const double quality = net.property2_quality();

  if (o.csv) {
    std::printf(
        "space,nodes,objects,queries,replicas,routing,r,roots,churn,"
        "success,stretch_mean,stretch_p95,hops_mean,latency_mean,"
        "quality,join_msgs,query_msgs\n");
    std::printf("%s,%zu,%zu,%zu,%u,%s,%u,%u,%d,%.4f,%.3f,%.3f,%.2f,%.5f,"
                "%.4f,%.1f,%.1f\n",
                o.space.c_str(), o.nodes, o.objects, o.queries, o.replicas,
                o.routing.c_str(), o.redundancy, o.roots, o.churn_rounds,
                double(found) / double(o.queries),
                stretch.empty() ? 0.0 : stretch.mean(),
                stretch.empty() ? 0.0 : stretch.percentile(95),
                hops.empty() ? 0.0 : hops.mean(),
                latency.empty() ? 0.0 : latency.mean(), quality,
                o.use_static || o.nodes < 2
                    ? 0.0
                    : double(build_trace.messages()) / double(o.nodes - 1),
                double(query_trace.messages()) / double(o.queries));
    return 0;
  }

  std::printf("tapestry_sim — %zu nodes on %s (%s routing, R=%u, roots=%u%s%s)\n",
              o.nodes, o.space.c_str(), o.routing.c_str(), o.redundancy,
              o.roots, o.retry ? ", retry" : "",
              o.secondary ? ", secondary-search" : "");
  if (!o.use_static)
    std::printf("  build:    %.0f msgs/join over %zu joins\n",
                double(build_trace.messages()) / double(o.nodes - 1),
                o.nodes - 1);
  std::printf("  publish:  %zu objects x %u replicas, %.1f msgs each\n",
              o.objects, o.replicas,
              double(publish_trace.messages()) /
                  double(o.objects * o.replicas));
  if (o.churn_rounds > 0)
    std::printf("  churn:    %zu joins, %zu leaves, %zu crashes "
                "(+ heartbeat/republish)\n",
                joins, leaves, fails);
  std::printf("  queries:  %zu/%zu found (%.2f%%)\n", found, o.queries,
              100.0 * double(found) / double(o.queries));
  if (!hops.empty()) {
    std::printf("  hops:     %s\n", hops.describe().c_str());
    std::printf("  latency:  %s\n", latency.describe().c_str());
    std::printf("  stretch:  %s\n", stretch.describe().c_str());
  }
  std::printf("  tables:   Property 2 quality %.2f%%, %.1f entries/node\n",
              quality * 100.0,
              double(net.total_table_entries()) / double(net.size()));
  return 0;
}
