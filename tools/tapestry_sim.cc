// tapestry_sim — scenario driver for the Tapestry simulator.
//
// Runs a configurable end-to-end scenario (build a network over a chosen
// metric space, publish a workload, churn it, query it) and prints summary
// statistics, optionally as CSV for plotting.  Everything the experiment
// binaries measure is reachable from here with flags, so new parameter
// studies don't require writing C++.
//
// Examples:
//   tapestry_sim --space=ring --nodes=256 --objects=128 --queries=2000
//   tapestry_sim --space=transit-stub --nodes=512 --routing=prr --r=2
//   tapestry_sim --nodes=256 --churn-rounds=50 --fail-prob=0.2 --csv
//   tapestry_sim --scenario=churn --nodes=256 --fail-rate=1.5 --ttl=8 --csv
//
// Flags (defaults in brackets):
//   --space=ring|torus|transit-stub|euclid6d|two-cluster   [ring]
//   --nodes=N        overlay size                           [256]
//   --objects=N      published objects                      [nodes/2]
//   --queries=N      lookup count                           [4*nodes]
//   --replicas=N     replicas per object                    [1]
//   --routing=native|prr                                    [native]
//   --r=N            redundancy (links per slot)            [3]
//   --roots=N        root multiplicity                      [1]
//   --retry          retry all roots on a miss (Obs. 1)     [off]
//   --secondary      PRR secondary publish/search (§2.4)    [off]
//   --static         build tables with the PRR oracle       [off: dynamic joins]
//   --churn-rounds=N rounds of join/leave/fail between queries [0]
//   --fail-prob=P    fraction of churn events that are crashes [0.25]
//   --seed=N                                                 [1]
//   --csv            emit CSV instead of the report
//
// Object-store backend flags (any scenario; see docs/stores.md):
//   --store=memory|sharded|persist|replicated|replicated+persist
//                     per-node store backend                   [memory]
//                     replicated* mirrors every root's records across its
//                     k nearest neighbors and serves locates at a dead
//                     root from an R-of-N quorum read
//   --store-dir=PATH  WAL/snapshot directory of the disk-backed backends
//                     (persist, replicated+persist); treated as sim-owned
//                     scratch and WIPED at startup
//                                                  [tapestry_store.<scenario>]
//
// Durable-backend extras (--store=persist or replicated+persist):
//   --scenario=recover       checkpoint -> destroy -> recover round trip:
//                            builds a static overlay, publishes and queries,
//                            checkpoints, tears the Network down, rebuilds
//                            membership from the manifest, restores, re-runs
//                            the identical query schedule and exits non-zero
//                            unless published() and availability match
//   --checkpoint-interval=T  periodic checkpoint epochs during
//                            --scenario=churn (0 = off)       [0]
//
// Parallel-build flags (--scenario=bigbuild; stands up a large overlay
// with the concurrent construction pipeline — bulk registration, parallel
// static tables, batched publishes — optionally topped by a wave of
// simultaneous §4.4 insertions, then samples queries):
//   --scenario=bigbuild      enable the pipeline
//   --threads=N              worker threads (0 = hardware)           [0]
//   --join-wave=W            concurrent dynamic joins on top         [0]
//   --join-threads=N         drive the join wave on N real threads
//                            (ThreadedJoinDriver) instead of the
//                            simulated-time event coordinator        [0]
//
// Churn-scenario flags (--scenario=churn; event-driven §6.5 experiments,
// deterministically reproducible from --seed):
//   --churn-threads=N        run the wall-clock ThreadedChurnSoak instead
//                            of the event-driven driver: N-thread
//                            join/fail/leave repair waves racing guarded
//                            publishes, expiry sweeps and peeked probes
//                            (requires --store=sharded, --cache=0)     [0]
//   --scenario=static|churn  one-shot measurement vs scripted churn [static]
//   --engine=event|sync      per-hop EventQueue execution or the legacy
//                            atomic/serialized engine                [event]
//   --horizon=T              simulated run length                    [40]
//   --epoch-len=T            statistics bucket length                [5]
//   --join-rate=R            Poisson joins per time unit             [0.8]
//   --leave-rate=R           voluntary departures per time unit      [0.6]
//   --fail-rate=R            fail-stop crashes per time unit         [0.6]
//   --query-rate=R           locate queries per time unit            [20]
//   --republish-interval=T   soft-state republish period (0 = off)   [4]
//   --expiry-interval=T      pointer-expiry sweep period (0 = off)   [1]
//   --heartbeat-interval=T   heartbeat repair period (0 = off)       [4]
//   --ttl=T                  pointer TTL                 [2 * republish]
//   --min-nodes=N            churn floor (no departures below)  [nodes/2]
//
// Demand-aware locate flags (any scenario; see src/tapestry/hotspot.h):
//   --cache=N                per-node locate-cache entries (0 = off)  [0]
//   --cache-ttl=T            extra age cap on cache entries (0 = none) [0]
//   --popularity=uniform|zipf  query-target skew (churn scenarios) [uniform]
//   --zipf-s=S               zipf exponent                          [1.0]
//   --hotspot                demand-driven replica placement        [off]
//   --flash-at=T             flash crowd: boost one object's popularity
//                            T units into the run (0 = off)         [0]
//   --flash-factor=X         flash-crowd multiplier                 [1000]
//   --flash-index=I          which object spikes                    [0]
//   --scenario=hotspot       churn scenario preconfigured for the flash
//                            crowd: zipf popularity, --cache=128 and
//                            --hotspot unless overridden, flash at
//                            horizon/2
//
// Fault-scenario presets (churn runs with a scripted fault; each exits
// non-zero unless its availability gate holds — see docs/scenarios.md):
//   --scenario=partition     split the overlay into two halves that cannot
//                            exchange messages, then heal the cut; churn
//                            rates default to 0 so the cut is the only
//                            disturbance.  --partition-at / --partition-heal
//                            override the cut window     [horizon/4, 5/8]
//   --scenario=rackfail      kill every node in the most-populated
//                            transit-stub domain at once (forces
//                            --space=transit-stub); --rackfail-at overrides
//                            the instant                 [horizon/4]
//   --scenario=rootfail      kill the current surrogate roots of the
//                            hottest published objects at once (churn rates
//                            default to 0, popularity to zipf);
//                            --rootfail-at / --rootfail-count override the
//                            instant and target count    [horizon/4, 3]
//   --scenario=burst         mobile-style churn bursts: --burst-every /
//                            --burst-len / --burst-factor control the
//                            cadence         [horizon/8, horizon/16, 8]
//
// Transport selection (any scenario; see docs/transport.md):
//   --transport=direct|loopback
//                     wire layer for inter-node messages: direct
//                     delivers in-process, loopback serializes every
//                     message through the Datagram codec        [direct]
//
// Metrics export (any scenario; see docs/metrics.md):
//   --metrics-out=FILE       reset the metrics registry and append one
//                            deterministic JSONL snapshot per epoch plus
//                            a terminal drain snapshot (churn-family
//                            scenarios only)
//   --metrics-port=N         serve Prometheus text exposition on
//                            127.0.0.1:N for the life of the process
//                            (N=0 picks an ephemeral port, printed)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/metric/general.h"
#include "src/metric/ring.h"
#include "src/metric/torus.h"
#include "src/metric/transit_stub.h"
#include "src/sim/churn_driver.h"
#include "src/sim/metrics.h"
#include "src/sim/thread_pool.h"
#include "src/tapestry/network.h"
#include "src/tapestry/parallel_join.h"

namespace {

using namespace tap;

struct Options {
  std::string space = "ring";
  std::size_t nodes = 256;
  std::size_t objects = 0;  // 0 => nodes/2
  std::size_t queries = 0;  // 0 => 4*nodes
  unsigned replicas = 1;
  std::string routing = "native";
  unsigned redundancy = 3;
  unsigned roots = 1;
  bool retry = false;
  bool secondary = false;
  bool use_static = false;
  int churn_rounds = 0;
  double fail_prob = 0.25;
  std::uint64_t seed = 1;
  bool csv = false;

  // Churn-scenario mode.
  std::string scenario = "static";
  std::string engine = "event";
  double horizon = 40.0;
  double epoch_len = 5.0;
  double join_rate = 0.8;
  double leave_rate = 0.6;
  double fail_rate = 0.6;
  double query_rate = 20.0;
  double republish_interval = 4.0;
  double expiry_interval = 1.0;
  double heartbeat_interval = 4.0;
  double ttl = 0.0;            // 0 => 2 * republish_interval
  std::size_t min_nodes = 0;   // 0 => nodes/2

  // Demand-aware locate path (src/tapestry/hotspot.h).
  std::size_t cache = 0;       // locate-cache entries per node (0 = off)
  double cache_ttl = 0.0;      // 0 => defer to the pointer TTL
  std::string popularity;      // empty => uniform (zipf under hotspot)
  double zipf_s = 1.0;
  bool hotspot = false;
  double flash_at = 0.0;       // 0 = no flash crowd
  double flash_factor = 1000.0;
  std::size_t flash_index = 0;

  // Bigbuild-scenario mode.
  std::size_t threads = 0;       // 0 => hardware concurrency
  std::size_t join_wave = 0;     // concurrent dynamic joins on top
  std::size_t join_threads = 0;  // 0 => event coordinator; N => real threads

  // Threaded-churn-soak mode (--scenario=churn only).
  std::size_t churn_threads = 0;  // 0 => event-driven ChurnDriver

  // Fault-scenario script (churn-family scenarios).
  double partition_at = 0.0;
  double partition_heal = 0.0;
  double rackfail_at = 0.0;
  double rootfail_at = 0.0;
  std::size_t rootfail_count = 3;
  double burst_every = 0.0;
  double burst_len = 0.0;
  double burst_factor = 8.0;

  // Metrics export.
  std::string metrics_out;
  int metrics_port = -1;  // -1 = off; 0 = ephemeral

  // Object-store backend.
  std::string store = "memory";
  std::string store_dir;       // empty => tapestry_store.<scenario>

  // Wire layer.
  std::string transport = "direct";
  double checkpoint_interval = 0.0;
};

// Scenarios that run through ChurnDriver (hotspot and the fault presets
// are churn runs with different knobs).
bool churn_family(const std::string& scenario) {
  return scenario == "churn" || scenario == "hotspot" ||
         scenario == "partition" || scenario == "rackfail" ||
         scenario == "rootfail" || scenario == "burst";
}

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--space", &v)) o.space = v;
    else if (parse_flag(argv[i], "--nodes", &v)) o.nodes = std::stoul(v);
    else if (parse_flag(argv[i], "--objects", &v)) o.objects = std::stoul(v);
    else if (parse_flag(argv[i], "--queries", &v)) o.queries = std::stoul(v);
    else if (parse_flag(argv[i], "--replicas", &v))
      o.replicas = static_cast<unsigned>(std::stoul(v));
    else if (parse_flag(argv[i], "--routing", &v)) o.routing = v;
    else if (parse_flag(argv[i], "--r", &v))
      o.redundancy = static_cast<unsigned>(std::stoul(v));
    else if (parse_flag(argv[i], "--roots", &v))
      o.roots = static_cast<unsigned>(std::stoul(v));
    else if (parse_flag(argv[i], "--churn-rounds", &v))
      o.churn_rounds = std::stoi(v);
    else if (parse_flag(argv[i], "--fail-prob", &v)) o.fail_prob = std::stod(v);
    else if (parse_flag(argv[i], "--seed", &v)) o.seed = std::stoull(v);
    else if (parse_flag(argv[i], "--scenario", &v)) o.scenario = v;
    else if (parse_flag(argv[i], "--engine", &v)) o.engine = v;
    else if (parse_flag(argv[i], "--horizon", &v)) o.horizon = std::stod(v);
    else if (parse_flag(argv[i], "--epoch-len", &v)) o.epoch_len = std::stod(v);
    else if (parse_flag(argv[i], "--join-rate", &v)) o.join_rate = std::stod(v);
    else if (parse_flag(argv[i], "--leave-rate", &v))
      o.leave_rate = std::stod(v);
    else if (parse_flag(argv[i], "--fail-rate", &v)) o.fail_rate = std::stod(v);
    else if (parse_flag(argv[i], "--query-rate", &v))
      o.query_rate = std::stod(v);
    else if (parse_flag(argv[i], "--republish-interval", &v))
      o.republish_interval = std::stod(v);
    else if (parse_flag(argv[i], "--expiry-interval", &v))
      o.expiry_interval = std::stod(v);
    else if (parse_flag(argv[i], "--heartbeat-interval", &v))
      o.heartbeat_interval = std::stod(v);
    else if (parse_flag(argv[i], "--ttl", &v)) o.ttl = std::stod(v);
    else if (parse_flag(argv[i], "--min-nodes", &v))
      o.min_nodes = std::stoul(v);
    else if (parse_flag(argv[i], "--cache", &v)) o.cache = std::stoul(v);
    else if (parse_flag(argv[i], "--cache-ttl", &v))
      o.cache_ttl = std::stod(v);
    else if (parse_flag(argv[i], "--popularity", &v)) o.popularity = v;
    else if (parse_flag(argv[i], "--zipf-s", &v)) o.zipf_s = std::stod(v);
    else if (parse_flag(argv[i], "--flash-at", &v)) o.flash_at = std::stod(v);
    else if (parse_flag(argv[i], "--flash-factor", &v))
      o.flash_factor = std::stod(v);
    else if (parse_flag(argv[i], "--flash-index", &v))
      o.flash_index = std::stoul(v);
    else if (parse_flag(argv[i], "--threads", &v)) o.threads = std::stoul(v);
    else if (parse_flag(argv[i], "--join-wave", &v))
      o.join_wave = std::stoul(v);
    else if (parse_flag(argv[i], "--join-threads", &v))
      o.join_threads = std::stoul(v);
    else if (parse_flag(argv[i], "--churn-threads", &v))
      o.churn_threads = std::stoul(v);
    else if (parse_flag(argv[i], "--partition-at", &v))
      o.partition_at = std::stod(v);
    else if (parse_flag(argv[i], "--partition-heal", &v))
      o.partition_heal = std::stod(v);
    else if (parse_flag(argv[i], "--rackfail-at", &v))
      o.rackfail_at = std::stod(v);
    else if (parse_flag(argv[i], "--rootfail-at", &v))
      o.rootfail_at = std::stod(v);
    else if (parse_flag(argv[i], "--rootfail-count", &v))
      o.rootfail_count = std::stoul(v);
    else if (parse_flag(argv[i], "--burst-every", &v))
      o.burst_every = std::stod(v);
    else if (parse_flag(argv[i], "--burst-len", &v))
      o.burst_len = std::stod(v);
    else if (parse_flag(argv[i], "--burst-factor", &v))
      o.burst_factor = std::stod(v);
    else if (parse_flag(argv[i], "--metrics-out", &v)) o.metrics_out = v;
    else if (parse_flag(argv[i], "--metrics-port", &v))
      o.metrics_port = std::stoi(v);
    else if (parse_flag(argv[i], "--store", &v)) o.store = v;
    else if (parse_flag(argv[i], "--store-dir", &v)) o.store_dir = v;
    else if (parse_flag(argv[i], "--transport", &v)) o.transport = v;
    else if (parse_flag(argv[i], "--checkpoint-interval", &v))
      o.checkpoint_interval = std::stod(v);
    else if (std::strcmp(argv[i], "--hotspot") == 0) o.hotspot = true;
    else if (std::strcmp(argv[i], "--retry") == 0) o.retry = true;
    else if (std::strcmp(argv[i], "--secondary") == 0) o.secondary = true;
    else if (std::strcmp(argv[i], "--static") == 0) o.use_static = true;
    else if (std::strcmp(argv[i], "--csv") == 0) o.csv = true;
    else {
      std::fprintf(stderr, "unknown flag: %s (see file header for usage)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  if (o.objects == 0) o.objects = o.nodes / 2;
  if (o.queries == 0) o.queries = 4 * o.nodes;
  if (o.min_nodes == 0) o.min_nodes = o.nodes / 2;
  if (o.ttl == 0.0)
    o.ttl = o.republish_interval > 0.0
                ? 2.0 * o.republish_interval
                : std::numeric_limits<double>::infinity();
  if (o.scenario != "static" && o.scenario != "churn" &&
      o.scenario != "bigbuild" && o.scenario != "recover" &&
      o.scenario != "hotspot" && o.scenario != "partition" &&
      o.scenario != "rackfail" && o.scenario != "rootfail" &&
      o.scenario != "burst") {
    std::fprintf(stderr, "unknown scenario: %s\n", o.scenario.c_str());
    std::exit(2);
  }
  if (o.scenario == "partition") {
    // The cut is the scenario's only disturbance: churn rates default to
    // zero, and the window leaves at least one republish round after the
    // heal so cross-side pointers refresh before the gate.
    if (o.partition_at == 0.0) o.partition_at = o.horizon / 4.0;
    if (o.partition_heal == 0.0) o.partition_heal = o.horizon * 5.0 / 8.0;
    o.join_rate = 0.0;
    o.leave_rate = 0.0;
    o.fail_rate = 0.0;
  }
  if (o.scenario == "rackfail") {
    if (o.space == "ring") o.space = "transit-stub";  // preset default
    if (o.space != "transit-stub") {
      std::fprintf(stderr,
                   "--scenario=rackfail requires --space=transit-stub\n");
      std::exit(2);
    }
    if (o.rackfail_at == 0.0) o.rackfail_at = o.horizon / 4.0;
  }
  if (o.scenario == "rootfail") {
    // Targeted root kill as the only disturbance: churn rates default to
    // zero, popularity to zipf so "hottest objects" ranks the targets, and
    // the kill fires a quarter into the run — leaving the soft-state
    // backstop (or the replicated store's quorum path, with
    // --store=replicated) the rest of the horizon to show recovery.
    if (o.rootfail_at == 0.0) o.rootfail_at = o.horizon / 4.0;
    if (o.popularity.empty()) o.popularity = "zipf";
    o.join_rate = 0.0;
    o.leave_rate = 0.0;
    o.fail_rate = 0.0;
  }
  if (o.scenario == "burst") {
    if (o.burst_every == 0.0) o.burst_every = o.horizon / 8.0;
    if (o.burst_len == 0.0) o.burst_len = o.horizon / 16.0;
  }
  if (o.scenario == "hotspot") {
    // Flash-crowd preset: a churn run with skewed popularity, the locate
    // cache and demand-driven replication on, and one object spiking
    // mid-run.  Explicit flags win over the preset.
    if (o.popularity.empty()) o.popularity = "zipf";
    if (o.cache == 0) o.cache = 128;
    o.hotspot = true;
    if (o.flash_at == 0.0) o.flash_at = o.horizon / 2.0;
  }
  if (o.popularity.empty()) o.popularity = "uniform";
  if (o.popularity != "uniform" && o.popularity != "zipf") {
    std::fprintf(stderr, "unknown popularity: %s\n", o.popularity.c_str());
    std::exit(2);
  }
  if (o.store != "memory" && o.store != "sharded" && o.store != "persist" &&
      o.store != "replicated" && o.store != "replicated+persist") {
    std::fprintf(stderr,
                 "unknown store backend: %s (valid: memory, sharded, "
                 "persist, replicated, replicated+persist)\n",
                 o.store.c_str());
    std::exit(2);
  }
  if (o.transport != "direct" && o.transport != "loopback") {
    std::fprintf(stderr,
                 "unknown transport: %s (valid: direct, loopback)\n",
                 o.transport.c_str());
    std::exit(2);
  }
  const bool durable_store =
      o.store == "persist" || o.store == "replicated+persist";
  if (o.scenario == "recover" && !durable_store) {
    std::fprintf(stderr, "--scenario=recover requires --store=persist or "
                         "--store=replicated+persist\n");
    std::exit(2);
  }
  if (o.checkpoint_interval > 0.0 && !durable_store) {
    std::fprintf(stderr, "--checkpoint-interval requires --store=persist or "
                         "--store=replicated+persist\n");
    std::exit(2);
  }
  if (o.store_dir.empty()) o.store_dir = "tapestry_store." + o.scenario;
  if (o.join_wave >= o.nodes) {
    std::fprintf(stderr, "--join-wave must be smaller than --nodes\n");
    std::exit(2);
  }
  if (o.engine != "event" && o.engine != "sync") {
    std::fprintf(stderr, "unknown engine: %s\n", o.engine.c_str());
    std::exit(2);
  }
  if (o.churn_threads > 0) {
    if (o.scenario != "churn") {
      std::fprintf(stderr, "--churn-threads requires --scenario=churn\n");
      std::exit(2);
    }
    if (o.store != "sharded") {
      std::fprintf(stderr, "--churn-threads requires --store=sharded\n");
      std::exit(2);
    }
    if (o.cache != 0) {
      std::fprintf(stderr, "--churn-threads requires --cache=0\n");
      std::exit(2);
    }
  }
  return o;
}

std::unique_ptr<MetricSpace> make_space(const Options& o, Rng& rng) {
  const std::size_t capacity = 2 * o.nodes + 16;  // headroom for churn joins
  if (o.space == "ring") return std::make_unique<RingMetric>(capacity, rng);
  if (o.space == "torus") return std::make_unique<Torus2D>(capacity, rng);
  if (o.space == "transit-stub")
    return std::make_unique<TransitStubMetric>(capacity, rng);
  if (o.space == "euclid6d")
    return std::make_unique<HighDimEuclidean>(capacity, 6, rng);
  if (o.space == "two-cluster")
    return std::make_unique<TwoClusterMetric>(capacity, rng);
  std::fprintf(stderr, "unknown space: %s\n", o.space.c_str());
  std::exit(2);
}

// The store dir is sim-owned scratch (see the flag docs): a stale run's
// WALs must not leak into this one's recovered state, so it is wiped at
// startup — but only a directory this sim created (it carries a marker
// file).  A user pointing --store-dir at a real directory gets a refusal,
// not a recursive delete.
void reset_store_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path marker = fs::path(dir) / ".tapestry_store";
  if (fs::exists(dir)) {
    if (!fs::exists(marker)) {
      std::fprintf(stderr,
                   "refusing to wipe %s: not a tapestry_sim store dir "
                   "(missing %s)\n",
                   dir.c_str(), marker.string().c_str());
      std::exit(2);
    }
    fs::remove_all(dir);
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  std::FILE* f = ec ? nullptr : std::fopen(marker.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot initialize store dir %s\n", dir.c_str());
    std::exit(2);
  }
  std::fputs("tapestry_sim scratch store; wiped on every persist run\n", f);
  std::fclose(f);
}

Guid make_guid(const Network& net, std::uint64_t raw) {
  const IdSpec spec = net.params().id;
  const std::uint64_t mask = spec.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec.total_bits()) - 1;
  return Guid(spec, splitmix64(raw ^ 0x51a) & mask);
}

// Wall-clock threaded churn soak (--churn-threads=N): rounds of
// join/fail/leave repair waves on N real threads racing guarded store
// traffic on the same overlay.  Exit code 0 iff the mesh converged
// (Property 1, backpointer symmetry, no pins) and every tracked object
// stayed locatable without a republish.
int run_threaded_churn(const Options& o, Network& net) {
  ThreadedChurnScenario sc;
  sc.rounds = o.churn_rounds > 0 ? static_cast<std::size_t>(o.churn_rounds)
                                 : std::size_t{4};
  sc.joins_per_round = std::max<std::size_t>(4, o.nodes / 16);
  sc.fails_per_round = std::max<std::size_t>(2, o.nodes / 32);
  sc.leaves_per_round = std::max<std::size_t>(2, o.nodes / 32);
  sc.min_nodes = o.min_nodes;
  sc.objects = o.objects;
  sc.publishes_per_round = 8;
  sc.workers = o.churn_threads;
  sc.seed = o.seed;

  ThreadedChurnSoak soak(net, sc);
  const ThreadedChurnReport rep = soak.run();

  std::printf(
      "tapestry_sim threaded churn — %zu nodes, %zu workers, seed %llu\n",
      net.size(), sc.workers,
      static_cast<unsigned long long>(o.seed));
  std::printf(
      "  %zu rounds: %zu joins, %zu fails, %zu leaves; %.3fs in repair "
      "waves (%.0f repairs/s)\n",
      rep.rounds, rep.joins, rep.fails, rep.leaves, rep.repair_seconds,
      rep.repairs_per_sec());
  std::printf(
      "  racers: %zu publishes, %zu expiry sweeps, %zu probes "
      "(%zu transient mid-wave misses)\n",
      rep.publishes, rep.expiry_sweeps, rep.probes, rep.probe_transients);
  std::printf("  availability: %zu/%zu located, no republish (%.4f)\n",
              rep.found, rep.queries, rep.availability());
  std::printf(
      "  converged: property1=%s symmetry=%s pins=%s  membership=%016llx "
      "occupancy=%016llx\n",
      rep.property1_ok ? "ok" : "FAIL", rep.symmetry_ok ? "ok" : "FAIL",
      rep.no_pins ? "none" : "LEFTOVER",
      static_cast<unsigned long long>(rep.membership_fp),
      static_cast<unsigned long long>(rep.occupancy_fp));
  const bool ok = rep.converged() && rep.found == rep.queries;
  return ok ? 0 : 1;
}

int run_churn_scenario(const Options& o, Network& net) {
  if (o.churn_threads > 0) return run_threaded_churn(o, net);
  ChurnScenario sc;
  sc.horizon = o.horizon;
  sc.epoch = o.epoch_len;
  sc.join_rate = o.join_rate;
  sc.leave_rate = o.leave_rate;
  sc.fail_rate = o.fail_rate;
  sc.min_nodes = o.min_nodes;
  sc.query_rate = o.query_rate;
  sc.post_failure_window = o.republish_interval > 0.0 ? o.republish_interval
                                                      : o.epoch_len;
  sc.objects = o.objects;
  sc.replicas = o.replicas;
  sc.republish_interval = o.republish_interval;
  sc.expiry_interval = o.expiry_interval;
  sc.heartbeat_interval = o.heartbeat_interval;
  sc.seed = o.seed;
  sc.synchronous = o.engine == "sync";
  sc.popularity = o.popularity == "zipf"
                      ? ChurnScenario::Popularity::kZipf
                      : ChurnScenario::Popularity::kUniform;
  sc.zipf_s = o.zipf_s;
  sc.flash_at = o.flash_at;
  sc.flash_factor = o.flash_factor;
  sc.flash_index = o.flash_index;
  sc.hotspot_replication = o.hotspot;
  if (o.checkpoint_interval > 0.0) {
    sc.checkpoint_interval = o.checkpoint_interval;
    sc.checkpoint_dir = o.store_dir;
  }
  sc.partition_at = o.partition_at;
  sc.partition_heal = o.partition_heal;
  sc.rackfail_at = o.rackfail_at;
  sc.rootfail_at = o.rootfail_at;
  sc.rootfail_count = o.rootfail_count;
  sc.burst_every = o.burst_every;
  sc.burst_len = o.burst_len;
  sc.burst_factor = o.burst_factor;
  sc.metrics_out = o.metrics_out;

  ChurnDriver driver(net, sc);
  const ChurnReport rep = driver.run();

  // Fault presets gate their exit status on recovery: the final epoch (the
  // window after the heal / the repair interval after the fault) must come
  // back to high availability, and the run as a whole must not collapse.
  // Availability is over objects that still have a live replica, so a
  // rack-kill destroying sole replicas does not count against the gate.
  int gate_rc = 0;
  if (o.scenario == "partition" || o.scenario == "rackfail" ||
      o.scenario == "rootfail" || o.scenario == "burst") {
    const double final_avail = rep.epochs.back().availability();
    const double total_avail = rep.availability();
    const double final_floor = o.scenario == "burst" ? 0.85 : 0.90;
    const double total_floor = o.scenario == "partition" ? 0.60 : 0.75;
    if (final_avail < final_floor || total_avail < total_floor) {
      std::fprintf(stderr,
                   "%s availability gate FAILED: final epoch %.4f "
                   "(floor %.2f), total %.4f (floor %.2f)\n",
                   o.scenario.c_str(), final_avail, final_floor, total_avail,
                   total_floor);
      gate_rc = 1;
    }
  }

  if (o.csv) {
    // hops_p50/hops_p99 are over found queries bucketed by completion
    // time — the per-epoch view of what the locate cache buys.
    auto hops_p = [](const Summary& s, double p) {
      return s.empty() ? 0.0 : s.percentile(p);
    };
    std::printf(
        "epoch,t0,t1,nodes,joins,leaves,fails,queries,found,availability,"
        "post_fail_queries,post_fail_found,skipped,stretch_mean,"
        "hops_p50,hops_p99,maint_msgs,churn_msgs\n");
    for (std::size_t i = 0; i < rep.epochs.size(); ++i) {
      const ChurnEpoch& e = rep.epochs[i];
      std::printf("%zu,%.2f,%.2f,%zu,%zu,%zu,%zu,%zu,%zu,%.4f,%zu,%zu,%zu,"
                  "%.3f,%.1f,%.1f,%zu,%zu\n",
                  i, e.t0, e.t1, e.live_nodes, e.joins, e.leaves, e.fails,
                  e.queries, e.found, e.availability(),
                  e.queries_post_failure, e.found_post_failure,
                  e.queries_skipped, e.mean_stretch(), hops_p(e.hops, 50),
                  hops_p(e.hops, 99), e.maintenance_msgs, e.churn_msgs);
    }
    const ChurnEpoch& d = rep.drain;
    std::printf("drain,%.2f,%.2f,%zu,%zu,%zu,%zu,%zu,%zu,%.4f,%zu,%zu,%zu,"
                "%.3f,%.1f,%.1f,%zu,%zu\n",
                d.t0, d.t1, d.live_nodes, d.joins, d.leaves, d.fails,
                d.queries, d.found, d.availability(), d.queries_post_failure,
                d.found_post_failure, d.queries_skipped, d.mean_stretch(),
                hops_p(d.hops, 50), hops_p(d.hops, 99), d.maintenance_msgs,
                d.churn_msgs);
    // The totals include the drain bucket, so the window runs to the
    // drain's end, not the horizon.
    std::printf("total,0.00,%.2f,%zu,%zu,%zu,%zu,%zu,%zu,%.4f,%zu,%zu,%zu,"
                "%.3f,%.1f,%.1f,%zu,%zu\n",
                rep.drain.t1, net.size(), rep.joins, rep.leaves, rep.fails,
                rep.queries, rep.found, rep.availability(),
                rep.queries_post_failure, rep.found_post_failure,
                rep.queries_skipped, rep.mean_stretch(), hops_p(rep.hops, 50),
                hops_p(rep.hops, 99), rep.maintenance_msgs, rep.churn_msgs);
    return gate_rc;
  }

  std::printf("tapestry_sim churn — %zu nodes on %s (%s engine, seed %llu)\n",
              o.nodes, o.space.c_str(), o.engine.c_str(),
              static_cast<unsigned long long>(o.seed));
  std::printf("  rates: join %.2f / leave %.2f / fail %.2f per unit, "
              "queries %.1f/unit\n",
              o.join_rate, o.leave_rate, o.fail_rate, o.query_rate);
  std::printf("  soft state: republish %.1f, expiry %.1f, heartbeat %.1f, "
              "ttl %.1f\n",
              o.republish_interval, o.expiry_interval, o.heartbeat_interval,
              o.ttl);
  std::printf("  %-5s %-13s %5s %5s %5s %5s %8s %7s %9s %8s %10s\n", "epoch",
              "window", "nodes", "join", "leave", "fail", "queries", "avail",
              "post-fail", "stretch", "maint msgs");
  for (std::size_t i = 0; i < rep.epochs.size(); ++i) {
    const ChurnEpoch& e = rep.epochs[i];
    char window[32];
    std::snprintf(window, sizeof window, "%.1f-%.1f", e.t0, e.t1);
    char postfail[32];
    std::snprintf(postfail, sizeof postfail, "%zu/%zu",
                  e.found_post_failure, e.queries_post_failure);
    std::printf("  %-5zu %-13s %5zu %5zu %5zu %5zu %8zu %6.2f%% %9s %8.2f "
                "%10zu\n",
                i, window, e.live_nodes, e.joins, e.leaves, e.fails,
                e.queries, e.availability() * 100.0, postfail,
                e.mean_stretch(), e.maintenance_msgs);
  }
  if (rep.drain.queries > 0 || rep.drain.maintenance_msgs > 0 ||
      rep.drain.churn_msgs > 0) {
    const ChurnEpoch& d = rep.drain;
    char window[32];
    std::snprintf(window, sizeof window, "%.1f-%.1f", d.t0, d.t1);
    char postfail[32];
    std::snprintf(postfail, sizeof postfail, "%zu/%zu", d.found_post_failure,
                  d.queries_post_failure);
    std::printf("  %-5s %-13s %5zu %5zu %5zu %5zu %8zu %6.2f%% %9s %8.2f "
                "%10zu\n",
                "drain", window, d.live_nodes, d.joins, d.leaves, d.fails,
                d.queries, d.availability() * 100.0, postfail,
                d.mean_stretch(), d.maintenance_msgs);
  }
  std::printf("  totals: availability %.2f%% (%zu/%zu, %zu skipped), "
              "post-failure %.2f%%, stretch %.2f\n",
              rep.availability() * 100.0, rep.found, rep.queries,
              rep.queries_skipped, rep.availability_post_failure() * 100.0,
              rep.mean_stretch());
  if (!rep.hops.empty())
    std::printf("  hops:    %s\n", rep.hops.describe().c_str());
  if (o.cache > 0) {
    const std::size_t lookups = rep.cache_hits + rep.cache_misses;
    std::printf("  cache:   %zu hits / %zu lookups (%.1f%%), "
                "%zu fallbacks\n",
                rep.cache_hits, lookups,
                lookups == 0 ? 0.0
                             : 100.0 * static_cast<double>(rep.cache_hits) /
                                   static_cast<double>(lookups),
                rep.cache_fallbacks);
  }
  if (o.hotspot) {
    const double mean_load =
        rep.load_nodes == 0 ? 0.0
                            : static_cast<double>(rep.found) /
                                  static_cast<double>(rep.load_nodes);
    std::printf("  hotspot: %zu promotions, %zu demotions; load max %zu "
                "over %zu resolvers (spread %.2f)\n",
                rep.hotspot_promotions, rep.hotspot_demotions, rep.load_max,
                rep.load_nodes,
                mean_load == 0.0 ? 0.0
                                 : static_cast<double>(rep.load_max) /
                                       mean_load);
  }
  std::printf("  traffic: %zu maintenance msgs (%.0f/unit), %zu churn msgs; "
              "%llu events fired\n",
              rep.maintenance_msgs, rep.maintenance_msgs / o.horizon,
              rep.churn_msgs,
              static_cast<unsigned long long>(rep.events_fired));
  return gate_rc;
}

// Checkpoint -> destroy -> recover round trip on the persistent backend:
// the proof behind kill-and-resume churn experiments.  Builds a static
// overlay, publishes and queries a workload, checkpoints, destroys the
// Network, rebuilds the membership from the checkpoint manifest (the
// per-node stores recover their WAL/snapshot files at construction),
// restores the replica registry, and replays the identical query schedule.
// Exit status is non-zero unless published() state and locate availability
// come back exactly.
int run_recover_scenario(const Options& o, const MetricSpace& space,
                         const TapestryParams& params) {
  std::vector<Guid> guids;
  std::vector<std::pair<Guid, NodeId>> pub_before;
  std::size_t found_before = 0;

  {
    Network net(space, params, o.seed);
    for (Location i = 0; i < o.nodes; ++i) net.insert_static(i);
    net.rebuild_static_tables();
    const auto ids = net.node_ids();
    Rng wl(o.seed ^ 0x4c0ad);
    for (std::size_t i = 0; i < o.objects; ++i) {
      const Guid guid = make_guid(net, i);
      guids.push_back(guid);
      for (unsigned r = 0; r < o.replicas; ++r)
        net.publish(ids[wl.next_u64(ids.size())], guid);
    }
    Rng ql(o.seed ^ 0x9e77);
    for (std::size_t q = 0; q < o.queries; ++q) {
      const Guid& guid = guids[ql.next_u64(guids.size())];
      if (net.locate(ids[ql.next_u64(ids.size())], guid).found) ++found_before;
    }
    net.checkpoint_stores(params.store_dir);
    pub_before = net.published();
    // Network destroyed here — the simulated kill.
  }

  const auto manifest = ObjectDirectory::read_manifest(params.store_dir);
  Network revived(space, params, o.seed);
  for (const auto& [idv, loc] : manifest.nodes)
    revived.insert_static(loc, NodeId(params.id, idv));
  revived.rebuild_static_tables();
  const double t_checkpoint = revived.restore_directory(params.store_dir);
  // Resume simulated time where the checkpoint left it: recovered expiry
  // deadlines are absolute, so a finite-TTL run restarted at clock 0 would
  // let every pointer outlive its deadline by the whole checkpoint time.
  revived.events().run_until(t_checkpoint);

  auto canon = [](std::vector<std::pair<Guid, NodeId>> v) {
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    return v;
  };
  const bool published_match =
      canon(pub_before) == canon(revived.published());

  const auto ids = revived.node_ids();
  Rng ql(o.seed ^ 0x9e77);
  std::size_t found_after = 0;
  for (std::size_t q = 0; q < o.queries; ++q) {
    const Guid& guid = guids[ql.next_u64(guids.size())];
    if (revived.locate(ids[ql.next_u64(ids.size())], guid).found)
      ++found_after;
  }
  const bool availability_match = found_after == found_before;
  const bool ok = published_match && availability_match;

  if (o.csv) {
    std::printf("nodes,objects,queries,found_before,found_after,"
                "published_records,published_match,availability_match,ok\n");
    std::printf("%zu,%zu,%zu,%zu,%zu,%zu,%d,%d,%d\n", o.nodes, o.objects,
                o.queries, found_before, found_after, pub_before.size(),
                published_match ? 1 : 0, availability_match ? 1 : 0,
                ok ? 1 : 0);
    return ok ? 0 : 1;
  }

  std::printf("tapestry_sim recover — %zu nodes on %s, store dir %s\n",
              o.nodes, o.space.c_str(), params.store_dir.c_str());
  std::printf("  checkpoint at t=%.3f: %zu (guid, server) records, "
              "%zu node stores flushed\n",
              t_checkpoint, pub_before.size(), manifest.nodes.size());
  std::printf("  published():   %s (%zu records)\n",
              published_match ? "identical" : "MISMATCH", pub_before.size());
  std::printf("  availability:  %zu/%zu before, %zu/%zu after -> %s\n",
              found_before, o.queries, found_after, o.queries,
              availability_match ? "identical" : "MISMATCH");
  std::printf("  round trip:    %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Concurrent large-overlay construction: bulk-register the core, build its
// tables with the parallel static oracle, batch-publish the workload, then
// (optionally) land a wave of simultaneous §4.4 insertions on top and
// sample queries against the result.
int run_bigbuild_scenario(const Options& o, const MetricSpace& space,
                          const TapestryParams& params) {
  const std::size_t threads =
      o.threads == 0 ? default_worker_count() : o.threads;
  Network net(space, params, o.seed);

  const std::size_t core = o.nodes - o.join_wave;
  std::vector<Location> locs(core);
  for (std::size_t i = 0; i < core; ++i) locs[i] = i;

  auto t0 = std::chrono::steady_clock::now();
  net.insert_static_bulk(locs, threads);
  net.rebuild_static_tables(threads);
  const double build_ms = wall_ms(t0);

  double wave_ms = 0.0;
  if (o.join_wave > 0 && o.join_threads > 0) {
    // Real threads: each worker drives one §4.4 join state machine,
    // racing the others through the per-node stripe locks.
    std::vector<JoinRequest> reqs(o.join_wave);
    for (std::size_t i = 0; i < o.join_wave; ++i) reqs[i].loc = core + i;
    t0 = std::chrono::steady_clock::now();
    net.join_bulk(reqs, o.join_threads);
    wave_ms = wall_ms(t0);
  } else if (o.join_wave > 0) {
    // Simulated time: the event coordinator interleaves the same protocol
    // on one thread.
    Rng wave_rng(o.seed ^ 0x9a7e);
    const auto core_ids = net.node_ids();
    std::vector<ParallelJoinCoordinator::Request> reqs(o.join_wave);
    for (std::size_t i = 0; i < o.join_wave; ++i) {
      reqs[i].loc = core + i;
      reqs[i].gateway = core_ids[wave_rng.next_u64(core_ids.size())];
      reqs[i].start_time = 0.0;
    }
    t0 = std::chrono::steady_clock::now();
    ParallelJoinCoordinator coordinator(net);
    coordinator.run(reqs);
    wave_ms = wall_ms(t0);
  }

  Rng wl(o.seed ^ 0x4c0ad);
  const auto ids = net.node_ids();
  std::vector<ObjectDirectory::PublishRequest> pubs;
  pubs.reserve(o.objects * o.replicas);
  std::vector<Guid> guids;
  for (std::size_t i = 0; i < o.objects; ++i) {
    const Guid guid = make_guid(net, i);
    guids.push_back(guid);
    for (unsigned r = 0; r < o.replicas; ++r)
      pubs.push_back({ids[wl.next_u64(ids.size())], guid});
  }
  Trace publish_trace;
  t0 = std::chrono::steady_clock::now();
  net.publish_batch(pubs, threads, &publish_trace);
  const double publish_ms = wall_ms(t0);

  net.check_property1();  // the bulk pipeline must still honour Property 1

  Summary hops, latency;
  std::size_t found = 0;
  const std::size_t queries = std::min<std::size_t>(o.queries, 20'000);
  for (std::size_t q = 0; q < queries; ++q) {
    const Guid& guid = guids[wl.next_u64(guids.size())];
    const LocateResult r =
        net.locate(ids[wl.next_u64(ids.size())], guid);
    if (!r.found) continue;
    ++found;
    hops.add(double(r.hops));
    latency.add(r.latency);
  }

  if (o.csv) {
    std::printf(
        "space,nodes,join_wave,join_threads,threads,objects,queries,build_ms,"
        "wave_ms,publish_ms,success,hops_mean,entries_per_node\n");
    std::printf("%s,%zu,%zu,%zu,%zu,%zu,%zu,%.1f,%.1f,%.1f,%.4f,%.2f,%.1f\n",
                o.space.c_str(), o.nodes, o.join_wave, o.join_threads,
                threads, o.objects,
                queries, build_ms, wave_ms, publish_ms,
                queries == 0 ? 1.0 : double(found) / double(queries),
                hops.empty() ? 0.0 : hops.mean(),
                double(net.total_table_entries()) / double(net.size()));
    return 0;
  }

  std::printf("tapestry_sim bigbuild — %zu nodes on %s, %zu threads\n",
              o.nodes, o.space.c_str(), threads);
  std::printf("  build:    %zu-node core in %.0f ms (bulk registration + "
              "parallel static tables)\n",
              core, build_ms);
  if (o.join_wave > 0 && o.join_threads > 0)
    std::printf("  wave:     %zu simultaneous insertions on %zu real "
                "threads in %.0f ms\n",
                o.join_wave, o.join_threads, wave_ms);
  else if (o.join_wave > 0)
    std::printf("  wave:     %zu simultaneous insertions in %.0f ms\n",
                o.join_wave, wave_ms);
  std::printf("  publish:  %zu deposits batched in %.0f ms "
              "(%zu objects x %u replicas, %.1f msgs each)\n",
              pubs.size(), publish_ms, o.objects, o.replicas,
              pubs.empty() ? 0.0
                           : double(publish_trace.messages()) /
                                 double(pubs.size()));
  std::printf("  queries:  %zu/%zu found (%.2f%%), hops %s\n", found, queries,
              queries == 0 ? 100.0 : 100.0 * double(found) / double(queries),
              hops.empty() ? "-" : hops.describe().c_str());
  std::printf("  tables:   %.1f entries/node, Property 1 verified\n",
              double(net.total_table_entries()) / double(net.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  // The scrape endpoint serves whatever the registry holds for the life of
  // the process; touch_builtin() makes the full metric set visible even
  // before the scenario's first increment.
  std::unique_ptr<metrics::ScrapeServer> scrape;
  if (o.metrics_port >= 0) {
    metrics::touch_builtin();
    scrape = std::make_unique<metrics::ScrapeServer>(o.metrics_port);
    if (!scrape->running()) {
      std::fprintf(stderr, "cannot bind metrics port %d\n", o.metrics_port);
      return 2;
    }
    std::fprintf(stderr, "metrics: http://127.0.0.1:%d/metrics\n",
                 scrape->port());
  }

  Rng rng(o.seed);
  auto space = make_space(o, rng);

  TapestryParams params;
  params.id = IdSpec{4, 8};
  params.redundancy = o.redundancy;
  params.root_multiplicity = o.roots;
  params.retry_all_roots = o.retry;
  params.prr_secondary_search = o.secondary;
  params.routing = o.routing == "prr" ? RoutingMode::kPrrLike
                                      : RoutingMode::kTapestryNative;
  if (churn_family(o.scenario)) params.pointer_ttl = o.ttl;
  params.locate_cache_size = o.cache;
  if (o.cache_ttl > 0.0) params.locate_cache_ttl = o.cache_ttl;
  if (o.transport == "loopback") params.transport = TransportKind::kLoopback;
  if (o.store == "sharded") params.store_backend = StoreBackend::kSharded;
  if (o.store == "replicated") params.store_backend = StoreBackend::kReplicated;
  if (o.store == "persist" || o.store == "replicated+persist") {
    params.store_backend = o.store == "persist"
                               ? StoreBackend::kPersistent
                               : StoreBackend::kReplicatedPersistent;
    params.store_dir = o.store_dir;
    reset_store_dir(params.store_dir);
  }

  if (o.scenario == "recover") return run_recover_scenario(o, *space, params);
  if (o.scenario == "bigbuild")
    return run_bigbuild_scenario(o, *space, params);

  Network net(*space, params, o.seed);
  Trace build_trace;
  if (o.use_static) {
    for (Location i = 0; i < o.nodes; ++i) net.insert_static(i);
    net.rebuild_static_tables();
  } else {
    net.bootstrap(0);
    for (Location i = 1; i < o.nodes; ++i)
      net.join(i, std::nullopt, &build_trace);
  }

  if (churn_family(o.scenario)) return run_churn_scenario(o, net);

  // Workload.
  Rng wl(o.seed ^ 0x4c0ad);
  struct Obj {
    Guid guid;
    std::vector<NodeId> servers;
  };
  std::vector<Obj> objects;
  Trace publish_trace;
  for (std::size_t i = 0; i < o.objects; ++i) {
    Obj obj{make_guid(net, i), {}};
    const auto ids = net.node_ids();
    for (unsigned r = 0; r < o.replicas; ++r) {
      const NodeId server = ids[wl.next_u64(ids.size())];
      net.publish(server, obj.guid, &publish_trace);
      obj.servers.push_back(server);
    }
    objects.push_back(std::move(obj));
  }

  // Optional churn between publication and measurement.
  std::size_t joins = 0, leaves = 0, fails = 0;
  Location next_loc = o.nodes;
  for (int round = 0; round < o.churn_rounds; ++round) {
    const double dice = wl.next_double();
    const auto ids = net.node_ids();
    if (dice < 0.4 && next_loc < space->size()) {
      net.join(next_loc++);
      ++joins;
    } else if (net.size() > o.nodes / 2) {
      const NodeId victim = ids[wl.next_u64(ids.size())];
      bool is_server = false;
      for (const auto& obj : objects)
        for (const NodeId& s : obj.servers)
          if (s == victim) is_server = true;
      if (is_server) continue;
      if (wl.next_double() < o.fail_prob) {
        net.fail(victim);
        ++fails;
      } else {
        net.leave(victim);
        ++leaves;
      }
    }
  }
  if (fails > 0) {
    net.heartbeat_sweep();
    net.republish_all();
  }

  // Measurement.
  Summary stretch, hops, latency;
  std::size_t found = 0;
  Trace query_trace;
  for (std::size_t q = 0; q < o.queries; ++q) {
    const Obj& obj = objects[wl.next_u64(objects.size())];
    const auto ids = net.node_ids();
    const NodeId client = ids[wl.next_u64(ids.size())];
    const LocateResult r = net.locate(client, obj.guid, &query_trace);
    if (!r.found) continue;
    ++found;
    hops.add(double(r.hops));
    latency.add(r.latency);
    const double direct = net.distance_to_nearest_replica(client, obj.guid);
    if (direct > 1e-9 && direct < 1e18) stretch.add(r.latency / direct);
  }
  const double quality = net.property2_quality();

  if (o.csv) {
    std::printf(
        "space,nodes,objects,queries,replicas,routing,r,roots,churn,"
        "success,stretch_mean,stretch_p95,hops_mean,latency_mean,"
        "quality,join_msgs,query_msgs\n");
    std::printf("%s,%zu,%zu,%zu,%u,%s,%u,%u,%d,%.4f,%.3f,%.3f,%.2f,%.5f,"
                "%.4f,%.1f,%.1f\n",
                o.space.c_str(), o.nodes, o.objects, o.queries, o.replicas,
                o.routing.c_str(), o.redundancy, o.roots, o.churn_rounds,
                double(found) / double(o.queries),
                stretch.empty() ? 0.0 : stretch.mean(),
                stretch.empty() ? 0.0 : stretch.percentile(95),
                hops.empty() ? 0.0 : hops.mean(),
                latency.empty() ? 0.0 : latency.mean(), quality,
                o.use_static || o.nodes < 2
                    ? 0.0
                    : double(build_trace.messages()) / double(o.nodes - 1),
                double(query_trace.messages()) / double(o.queries));
    return 0;
  }

  std::printf("tapestry_sim — %zu nodes on %s (%s routing, R=%u, roots=%u%s%s)\n",
              o.nodes, o.space.c_str(), o.routing.c_str(), o.redundancy,
              o.roots, o.retry ? ", retry" : "",
              o.secondary ? ", secondary-search" : "");
  if (!o.use_static)
    std::printf("  build:    %.0f msgs/join over %zu joins\n",
                double(build_trace.messages()) / double(o.nodes - 1),
                o.nodes - 1);
  std::printf("  publish:  %zu objects x %u replicas, %.1f msgs each\n",
              o.objects, o.replicas,
              double(publish_trace.messages()) /
                  double(o.objects * o.replicas));
  if (o.churn_rounds > 0)
    std::printf("  churn:    %zu joins, %zu leaves, %zu crashes "
                "(+ heartbeat/republish)\n",
                joins, leaves, fails);
  std::printf("  queries:  %zu/%zu found (%.2f%%)\n", found, o.queries,
              100.0 * double(found) / double(o.queries));
  if (!hops.empty()) {
    std::printf("  hops:     %s\n", hops.describe().c_str());
    std::printf("  latency:  %s\n", latency.describe().c_str());
    std::printf("  stretch:  %s\n", stretch.describe().c_str());
  }
  std::printf("  tables:   Property 2 quality %.2f%%, %.1f entries/node\n",
              quality * 100.0,
              double(net.total_table_entries()) / double(net.size()));
  return 0;
}
