#!/usr/bin/env python3
"""Cross-check the metrics registry against docs/metrics.md.

Every metric the simulator exports is registered by a named accessor in
src/sim/metrics.cc (the registry's design rule), so that single file is
the source of truth for the exported set.  This script extracts every
"tapestry_*" name literal registered there and every `tapestry_*` name
documented in docs/metrics.md, and fails the build when either side has
a name the other lacks:

  * registered but undocumented — an operator scraping the endpoint
    finds a series the docs never explain;
  * documented but unregistered — the docs promise a series that no
    longer exists.

Usage:
    check_metrics_doc.py [--src src/sim/metrics.cc] [--doc docs/metrics.md]

Exit code 0 when the sets match, 1 otherwise.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"tapestry_[a-z0-9_]+")


def registered_names(src_path):
    """Metric families registered in metrics.cc (quoted name literals)."""
    with open(src_path, encoding="utf-8") as f:
        text = f.read()
    return {m.group(0)[1:-1]
            for m in re.finditer(r'"tapestry_[a-z0-9_]+"', text)}


def documented_names(doc_path):
    """Metric families named in backticks in docs/metrics.md."""
    with open(doc_path, encoding="utf-8") as f:
        text = f.read()
    names = set()
    for code in re.findall(r"`([^`]+)`", text):
        m = NAME_RE.fullmatch(code.strip())
        if m:
            names.add(m.group(0))
    return names


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", default="src/sim/metrics.cc")
    parser.add_argument("--doc", default="docs/metrics.md")
    args = parser.parse_args()

    registered = registered_names(args.src)
    documented = documented_names(args.doc)
    if not registered:
        sys.exit(f"{args.src}: no registered tapestry_* metrics found "
                 "(wrong --src path?)")
    if not documented:
        sys.exit(f"{args.doc}: no documented tapestry_* metrics found "
                 "(wrong --doc path?)")

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    for name in undocumented:
        print(f"UNDOCUMENTED: {name} is registered in {args.src} "
              f"but missing from {args.doc}")
    for name in stale:
        print(f"STALE: {name} is documented in {args.doc} "
              f"but not registered in {args.src}")
    if undocumented or stale:
        return 1
    print(f"metrics doc in sync: {len(registered)} families documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
