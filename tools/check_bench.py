#!/usr/bin/env python3
"""Gate benchmark --json output against a checked-in baseline.

Usage:
    check_bench.py BASELINE.json RESULT.json [--default-tolerance 0.25]

BASELINE is committed under bench/baselines/ and declares, per metric, the
expected value, the direction a regression moves it, and an optional
per-metric tolerance:

    {"bench": "bench_routing",
     "metrics": {
        "hops_mean_n2048_native": {"value": 2.83, "better": "lower",
                                   "tolerance": 0.05},
        "unique_roots_n2048_native": {"value": 1, "better": "exact"},
        "build_speedup": {"value": 2.0, "better": "higher",
                          "tolerance": 0.5}}}

RESULT is what the bench binary printed with --json:

    {"bench": "bench_routing", "metrics": {"hops_mean_n2048_native": 2.84}}

Semantics per `better`:
    lower  — fail when result > value * (1 + tolerance)   (times, hops)
    higher — fail when result < value * (1 - tolerance)   (speedups)
    exact  — fail when |result - value| > tolerance * max(|value|, 1)
             (deterministic counters; tolerance defaults to 0)

Metrics present in the baseline but missing from the result fail (a bench
that silently stops reporting a gated number is itself a regression);
result metrics with no baseline entry are informational only.  Exit code 0
when every gate holds, 1 otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "metrics" not in doc:
        sys.exit(f"{path}: no 'metrics' key")
    return doc


def check_metric(name, spec, result_value, default_tolerance):
    value = float(spec["value"])
    better = spec.get("better", "lower")
    if better == "exact":
        tolerance = float(spec.get("tolerance", 0.0))
        bound = tolerance * max(abs(value), 1.0) + 1e-9
        ok = abs(result_value - value) <= bound
        detail = f"expected {value:g} ±{bound:g}"
    elif better == "lower":
        tolerance = float(spec.get("tolerance", default_tolerance))
        limit = value * (1.0 + tolerance)
        ok = result_value <= limit
        detail = f"limit <= {limit:g} (baseline {value:g} +{tolerance:.0%})"
    elif better == "higher":
        tolerance = float(spec.get("tolerance", default_tolerance))
        limit = value * (1.0 - tolerance)
        ok = result_value >= limit
        detail = f"limit >= {limit:g} (baseline {value:g} -{tolerance:.0%})"
    else:
        sys.exit(f"metric {name}: unknown 'better' kind {better!r}")
    return ok, detail


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("result")
    parser.add_argument("--default-tolerance", type=float, default=0.25,
                        help="relative tolerance when a metric declares "
                             "none (default: 0.25 = fail on >25%% regression)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    result = load(args.result)
    if baseline.get("bench") != result.get("bench"):
        print(f"WARNING: bench names differ: baseline "
              f"{baseline.get('bench')!r} vs result {result.get('bench')!r}")

    result_metrics = {
        k: (v["value"] if isinstance(v, dict) else v)
        for k, v in result["metrics"].items()
    }

    failures = 0
    width = max((len(k) for k in baseline["metrics"]), default=10)
    print(f"{'metric':<{width}}  {'result':>12}  verdict")
    for name, spec in baseline["metrics"].items():
        if name not in result_metrics:
            print(f"{name:<{width}}  {'MISSING':>12}  FAIL (not reported)")
            failures += 1
            continue
        got = float(result_metrics[name])
        ok, detail = check_metric(name, spec, got,
                                  args.default_tolerance)
        print(f"{name:<{width}}  {got:>12g}  {'ok' if ok else 'FAIL'} "
              f"[{detail}]")
        if not ok:
            failures += 1

    informational = sorted(set(result_metrics) - set(baseline["metrics"]))
    if informational:
        print("ungated (informational): "
              + ", ".join(f"{k}={result_metrics[k]:g}" for k in informational))

    if failures:
        print(f"\n{failures} gated metric(s) regressed beyond tolerance")
        return 1
    print("\nall gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
